package selection

import (
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/trace"
)

func pool(t *testing.T, n int) []*device.Client {
	t.Helper()
	p, err := device.NewPopulation(device.PopulationConfig{
		Clients: n, Scenario: trace.ScenarioDynamic, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func work() device.WorkSpec {
	return device.WorkSpec{RefFLOPsPerSample: 1e9, RefParams: 1e6, Samples: 50, Epochs: 5}
}

func info(round int) RoundInfo {
	return RoundInfo{Round: round, Work: work(), DeadlineSec: 120}
}

func uniqueIDs(t *testing.T, ids []int, poolSize int) {
	t.Helper()
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= poolSize {
			t.Fatalf("selected id %d out of pool range %d", id, poolSize)
		}
		if seen[id] {
			t.Fatalf("duplicate selection of client %d", id)
		}
		seen[id] = true
	}
}

func TestRandomSelect(t *testing.T) {
	p := pool(t, 40)
	s := NewRandom(1)
	if s.Name() != "fedavg" {
		t.Fatalf("Name = %q", s.Name())
	}
	ids := s.Select(info(0), p, 10)
	if len(ids) != 10 {
		t.Fatalf("selected %d, want 10", len(ids))
	}
	uniqueIDs(t, ids, 40)
	// k > pool clamps.
	if got := s.Select(info(0), p, 100); len(got) != 40 {
		t.Fatalf("overselect returned %d, want 40", len(got))
	}
}

func TestRandomIsUnbiasedOverRounds(t *testing.T) {
	p := pool(t, 30)
	s := NewRandom(2)
	counts := make([]int, 30)
	for r := 0; r < 300; r++ {
		for _, id := range s.Select(info(r), p, 10) {
			counts[id]++
		}
	}
	// Every client should be selected a healthy number of times
	// (expected 100 each).
	for id, c := range counts {
		if c < 50 {
			t.Fatalf("random selection starved client %d (%d selections)", id, c)
		}
	}
}

func TestOortSelectBasics(t *testing.T) {
	p := pool(t, 40)
	s := NewOort(OortConfig{Seed: 3})
	if s.Name() != "oort" {
		t.Fatalf("Name = %q", s.Name())
	}
	ids := s.Select(info(0), p, 12)
	if len(ids) != 12 {
		t.Fatalf("selected %d, want 12", len(ids))
	}
	uniqueIDs(t, ids, 40)
}

func TestOortPrefersFastHighUtilityClients(t *testing.T) {
	p := pool(t, 20)
	s := NewOort(OortConfig{Seed: 4, ExploreFrac: 0.0001})
	// Feed feedback: clients 0-4 fast + useful; 5-9 slow; 10-19 drop out.
	for id := 0; id < 20; id++ {
		fb := Feedback{ClientID: id, Round: 0, StatUtility: 1}
		switch {
		case id < 5:
			fb.Outcome = device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: 10}}
			fb.StatUtility = 2
		case id < 10:
			fb.Outcome = device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: 500}}
		default:
			fb.Outcome = device.Outcome{Completed: false, Reason: device.DropDeadline,
				Cost: device.Cost{TotalSeconds: 120}}
		}
		s.Observe(fb)
		s.Observe(fb) // repeat to settle the EMA and failure counts
	}
	counts := make([]int, 20)
	for r := 0; r < 50; r++ {
		for _, id := range s.Select(info(r), p, 5) {
			counts[id]++
		}
	}
	fast, dropped := 0, 0
	for id := 0; id < 5; id++ {
		fast += counts[id]
	}
	for id := 10; id < 20; id++ {
		dropped += counts[id]
	}
	if fast <= dropped {
		t.Fatalf("Oort should prefer fast clients: fast=%d dropped=%d", fast, dropped)
	}
}

func TestOortExploresUntriedClients(t *testing.T) {
	p := pool(t, 30)
	s := NewOort(OortConfig{Seed: 5, ExploreFrac: 0.5})
	// Mark half the pool as tried.
	for id := 0; id < 15; id++ {
		s.Observe(Feedback{ClientID: id,
			Outcome: device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: 10}}, StatUtility: 1})
	}
	ids := s.Select(info(1), p, 10)
	untried := 0
	for _, id := range ids {
		if id >= 15 {
			untried++
		}
	}
	if untried < 3 {
		t.Fatalf("Oort explored only %d untried clients with ExploreFrac=0.5", untried)
	}
}

func TestREFLSelectBasics(t *testing.T) {
	p := pool(t, 40)
	s := NewREFL(REFLConfig{Seed: 6})
	if s.Name() != "refl" {
		t.Fatalf("Name = %q", s.Name())
	}
	ids := s.Select(info(0), p, 10)
	if len(ids) != 10 {
		t.Fatalf("selected %d, want 10", len(ids))
	}
	uniqueIDs(t, ids, 40)
}

func TestREFLPrefersFastClients(t *testing.T) {
	p := pool(t, 20)
	s := NewREFL(REFLConfig{Seed: 7})
	for id := 0; id < 20; id++ {
		secs := 10.0
		if id >= 10 {
			secs = 1000
		}
		s.Observe(Feedback{ClientID: id, Round: 0,
			Outcome: device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: secs}}})
	}
	counts := make([]int, 20)
	for r := 1; r < 40; r++ {
		for _, id := range s.Select(info(r), p, 5) {
			counts[id]++
		}
	}
	fast, slow := 0, 0
	for id := 0; id < 10; id++ {
		fast += counts[id]
	}
	for id := 10; id < 20; id++ {
		slow += counts[id]
	}
	if fast <= slow*2 {
		t.Fatalf("REFL should strongly prefer fast clients: fast=%d slow=%d", fast, slow)
	}
}

func TestREFLSkipsPredictedUnavailable(t *testing.T) {
	p := pool(t, 50)
	s := NewREFL(REFLConfig{Seed: 8, Window: 4, AvailThreshold: 0.75})
	// Warm the availability history across several rounds.
	for r := 0; r < 6; r++ {
		s.Select(info(r), p, 10)
	}
	// Find a client whose recent history is mostly unavailable.
	var offline *device.Client
	for _, c := range p {
		h := s.history[c.ID]
		n := 0
		for _, a := range h {
			if a {
				n++
			}
		}
		if len(h) > 0 && float64(n)/float64(len(h)) < 0.5 {
			offline = c
			break
		}
	}
	if offline == nil {
		t.Skip("no mostly-offline client in this seed")
	}
	if s.predictAvailable(offline.ID) {
		t.Fatal("predictAvailable should reject a mostly-offline client")
	}
}

func TestREFLMoreBiasedThanRandom(t *testing.T) {
	// Fig 2a's key claim: REFL excludes a substantial share of the
	// population; random selection does not.
	p := pool(t, 60)
	countNever := func(sel Selector) int {
		counts := make([]int, 60)
		for r := 0; r < 100; r++ {
			ids := sel.Select(info(r), p, 10)
			for _, id := range ids {
				counts[id]++
				// Feed plausible outcomes so respSecs accumulates.
				secs := device.EstimateResponseSeconds(p[id], r, work())
				sel.Observe(Feedback{ClientID: id, Round: r,
					Outcome: device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: secs}}})
			}
		}
		never := 0
		for _, c := range counts {
			if c == 0 {
				never++
			}
		}
		return never
	}
	neverRandom := countNever(NewRandom(9))
	neverREFL := countNever(NewREFL(REFLConfig{Seed: 9}))
	if neverREFL <= neverRandom {
		t.Fatalf("REFL should exclude more clients than random: refl=%d random=%d",
			neverREFL, neverRandom)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Fatal("clamp01 broken")
	}
}
