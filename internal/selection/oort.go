package selection

import (
	"math"
	"math/rand"

	"floatfl/internal/device"
	"floatfl/internal/rngstate"
)

// OortConfig tunes the Oort selector.
type OortConfig struct {
	// Alpha is the exponent of the system-speed penalty (Oort's default 2).
	Alpha float64
	// ExploreFrac of each round's slots goes to never-tried clients.
	ExploreFrac float64
	// PreferredDurationSec is Oort's developer-preferred round duration T;
	// clients slower than T are penalized by (T/t)^Alpha. Zero derives T
	// from the round deadline and lets the pacer adapt it.
	PreferredDurationSec float64
	// PacerStep is the fraction by which the pacer relaxes or tightens the
	// preferred duration when too few / enough clients beat it (Oort's
	// pacer; default 0.2). Only active when PreferredDurationSec is 0.
	PacerStep float64
	// BlacklistAfter removes a client from exploitation after this many
	// consecutive dropouts (default 4); exploration can still revisit it.
	BlacklistAfter int
	Seed           int64
}

// Oort implements guided participant selection: utility = statistical
// utility × system penalty, with an exploration slice for unseen clients.
// Because utility rewards fast completions, Oort systematically prefers
// efficient clients — the bias Fig. 2a quantifies.
type Oort struct {
	cfg OortConfig
	rng *rand.Rand
	src *rngstate.Source

	statUtil map[int]float64 // EMA of loss-based utility
	respSecs map[int]float64 // EMA of response time
	tried    map[int]bool
	failures map[int]int // consecutive dropouts

	// pacer state: the adaptive preferred duration, and the completion
	// counts of the current pacer window.
	pacerT      float64
	windowOK    int
	windowTotal int
}

// NewOort constructs an Oort selector with sensible defaults for zero
// fields (Alpha 2, ExploreFrac 0.1).
func NewOort(cfg OortConfig) *Oort {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 2
	}
	if cfg.ExploreFrac <= 0 {
		cfg.ExploreFrac = 0.1
	}
	if cfg.PacerStep <= 0 {
		cfg.PacerStep = 0.2
	}
	if cfg.BlacklistAfter <= 0 {
		cfg.BlacklistAfter = 4
	}
	src := rngstate.New(cfg.Seed)
	return &Oort{
		cfg:      cfg,
		rng:      rand.New(src),
		src:      src,
		statUtil: make(map[int]float64),
		respSecs: make(map[int]float64),
		tried:    make(map[int]bool),
		failures: make(map[int]int),
	}
}

// Name implements Selector.
func (o *Oort) Name() string { return "oort" }

// Select implements Selector: an exploration slice of never-tried clients
// plus the top exploitation utilities.
func (o *Oort) Select(info RoundInfo, pool []*device.Client, k int) []int {
	if k > len(pool) {
		k = len(pool)
	}
	preferred := o.cfg.PreferredDurationSec
	if preferred <= 0 {
		if o.pacerT <= 0 {
			o.pacerT = info.DeadlineSec * 0.8
			if o.pacerT <= 0 {
				o.pacerT = 60
			}
		}
		o.pace()
		preferred = o.pacerT
	}

	// Exploration slice: never-tried clients, randomly ordered.
	nExplore := int(math.Round(o.cfg.ExploreFrac * float64(k)))
	var untried []int
	for _, c := range pool {
		if !o.tried[c.ID] {
			untried = append(untried, c.ID)
		}
	}
	o.rng.Shuffle(len(untried), func(i, j int) { untried[i], untried[j] = untried[j], untried[i] })
	if nExplore > len(untried) {
		nExplore = len(untried)
	}
	chosen := append([]int(nil), untried[:nExplore]...)
	inChosen := make(map[int]bool, k)
	for _, id := range chosen {
		inChosen[id] = true
	}

	// Exploitation: rank the rest by Oort utility, skipping blacklisted
	// clients unless the pool has nobody else to offer.
	rest := make([]*device.Client, 0, len(pool))
	var blacklisted []*device.Client
	for _, c := range pool {
		if inChosen[c.ID] {
			continue
		}
		if math.IsInf(o.utility(c.ID, preferred), -1) {
			blacklisted = append(blacklisted, c)
			continue
		}
		rest = append(rest, c)
	}
	need := k - len(chosen)
	if len(rest) < need {
		rest = append(rest, blacklisted...)
	}
	ids := topKByScore(rest, func(c *device.Client) float64 {
		return o.utility(c.ID, preferred)
	}, need, o.rng)
	return append(chosen, ids...)
}

// pace adapts the preferred duration like Oort's pacer: if fewer than half
// of the recent participants beat T, relax it; if nearly everyone does,
// tighten it to push for faster rounds. The window resets after each
// adjustment.
func (o *Oort) pace() {
	const window = 20
	if o.windowTotal < window {
		return
	}
	frac := float64(o.windowOK) / float64(o.windowTotal)
	switch {
	case frac < 0.5:
		o.pacerT *= 1 + o.cfg.PacerStep
	case frac > 0.9:
		o.pacerT *= 1 - o.cfg.PacerStep/2
	}
	o.windowOK, o.windowTotal = 0, 0
}

// utility computes Oort's scoring for a known client. Unknown clients get
// a moderate default so they can still be exploited before exploration
// reaches them.
func (o *Oort) utility(id int, preferredSec float64) float64 {
	// Hard blacklist: exploitation skips chronic droppers entirely.
	if o.failures[id] >= o.cfg.BlacklistAfter {
		return math.Inf(-1)
	}
	stat, known := o.statUtil[id]
	if !known {
		stat = 1.0
	}
	u := stat
	if t, ok := o.respSecs[id]; ok && t > preferredSec {
		u *= math.Pow(preferredSec/t, o.cfg.Alpha)
	}
	// Repeated dropouts decay utility sharply even before the blacklist.
	if f := o.failures[id]; f > 0 {
		u *= math.Pow(0.5, float64(f))
	}
	return u
}

// Observe implements Selector.
func (o *Oort) Observe(fb Feedback) {
	o.tried[fb.ClientID] = true
	o.windowTotal++
	if fb.Outcome.Completed && (o.pacerT <= 0 || fb.Outcome.Cost.TotalSeconds <= o.pacerT) {
		o.windowOK++
	}
	const ema = 0.5
	if fb.Outcome.Completed {
		o.failures[fb.ClientID] = 0
		if prev, ok := o.respSecs[fb.ClientID]; ok {
			o.respSecs[fb.ClientID] = ema*fb.Outcome.Cost.TotalSeconds + (1-ema)*prev
		} else {
			o.respSecs[fb.ClientID] = fb.Outcome.Cost.TotalSeconds
		}
		if fb.StatUtility > 0 {
			if prev, ok := o.statUtil[fb.ClientID]; ok {
				o.statUtil[fb.ClientID] = ema*fb.StatUtility + (1-ema)*prev
			} else {
				o.statUtil[fb.ClientID] = fb.StatUtility
			}
		}
	} else {
		o.failures[fb.ClientID]++
		// A dropout is evidence of slowness: penalize the response EMA.
		if prev, ok := o.respSecs[fb.ClientID]; ok {
			o.respSecs[fb.ClientID] = prev * 1.5
		} else {
			o.respSecs[fb.ClientID] = fb.Outcome.Cost.TotalSeconds * 2
		}
	}
}
