package selection

import (
	"math/rand"
	"sort"
	"testing"

	"floatfl/internal/device"
	"floatfl/internal/trace"
)

// fakeView is a dense PopulationView for selector tests, counting how many
// distinct clients a selector actually derived.
type fakeView struct {
	clients []*device.Client
	touched map[int]bool
}

func newFakeView(t *testing.T, n int, seed int64) *fakeView {
	t.Helper()
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: n, Scenario: trace.ScenarioDynamic, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeView{clients: pop, touched: make(map[int]bool)}
}

func (v *fakeView) NumClients() int { return len(v.clients) }
func (v *fakeView) Client(id int) *device.Client {
	v.touched[id] = true
	return v.clients[id]
}

func checkSelection(t *testing.T, ids []int, view *fakeView, round, k int) {
	t.Helper()
	if len(ids) > k {
		t.Fatalf("selected %d ids, want ≤ %d", len(ids), k)
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d in selection", id)
		}
		seen[id] = true
		if id < 0 || id >= view.NumClients() {
			t.Fatalf("id %d out of range", id)
		}
		if !view.clients[id].ResourcesAt(round).Available {
			t.Fatalf("selected unavailable client %d", id)
		}
	}
}

// TestLazySelectorsContract runs every built-in selector through a few
// lazy rounds with feedback, asserting the LazySelector contract: distinct
// in-range available IDs, and a probe count that is O(k), not
// O(population).
func TestLazySelectorsContract(t *testing.T) {
	const n, k = 5000, 10
	selectors := map[string]LazySelector{
		"random": NewRandom(3),
		"oort":   NewOort(OortConfig{Seed: 4}),
		"refl":   NewREFL(REFLConfig{Seed: 5}),
	}
	names := make([]string, 0, len(selectors))
	for name := range selectors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sel := selectors[name]
		t.Run(name, func(t *testing.T) {
			view := newFakeView(t, n, 11)
			rng := rand.New(rand.NewSource(1))
			for round := 0; round < 5; round++ {
				info := RoundInfo{Round: round, DeadlineSec: 120}
				ids := sel.SelectLazy(info, view, k)
				checkSelection(t, ids, view, round, k)
				if len(ids) == 0 {
					t.Fatalf("round %d: selected nothing from a %d-client population", round, n)
				}
				for _, id := range ids {
					sel.Observe(Feedback{
						ClientID: id,
						Round:    round,
						Outcome: device.Outcome{
							Completed: rng.Float64() < 0.7,
							Cost:      device.Cost{TotalSeconds: 10 + 50*rng.Float64()},
						},
						StatUtility: rng.Float64(),
					})
				}
			}
			// The point of lazy selection: a 5000-client population must not
			// be scanned. Budget: 5 rounds × (8k+64) probes plus slack.
			if got, bound := len(view.touched), 5*(8*k+64)+k; got > bound {
				t.Fatalf("selector derived %d clients over 5 rounds, want ≤ %d (O(selected), not O(population))", got, bound)
			}
		})
	}
}

// TestRandomLazyDeterministic pins that SelectLazy is a pure function of
// (seed, access sequence).
func TestRandomLazyDeterministic(t *testing.T) {
	run := func() [][]int {
		sel := NewRandom(9)
		view := newFakeView(t, 1000, 13)
		var out [][]int
		for round := 0; round < 4; round++ {
			out = append(out, sel.SelectLazy(RoundInfo{Round: round}, view, 8))
		}
		return out
	}
	a, b := run(), run()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("round %d: lengths differ", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("round %d slot %d: %d vs %d", r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestPermSamplerIsPermutation exhausts the sampler and checks it emits
// each element exactly once.
func TestPermSamplerIsPermutation(t *testing.T) {
	ps := NewPermSampler(rand.New(rand.NewSource(2)), 257)
	seen := make(map[int]bool)
	for {
		v, ok := ps.Next()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d emitted twice", v)
		}
		if v < 0 || v >= 257 {
			t.Fatalf("value %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 257 {
		t.Fatalf("emitted %d distinct values, want 257", len(seen))
	}
}
