package selection

import (
	"math"
	"math/rand"

	"floatfl/internal/device"
	"floatfl/internal/rngstate"
)

// REFLConfig tunes the REFL selector.
type REFLConfig struct {
	// Window is the number of recent availability observations used to
	// predict the next round's availability.
	Window int
	// AvailThreshold is the fraction of recent observations that must be
	// "available" for the client to be predicted available next round.
	AvailThreshold float64
	Seed           int64
}

// REFL models the paper's characterization of REFL (EuroSys '23): it
// observes each client's availability at every round, predicts the next
// availability window from that history, and among predicted-available
// clients prefers the fastest ones (lowest observed response time),
// falling back to least-recently-participated for unseen clients.
//
// Its two failure modes — both demonstrated by the paper — are inherent to
// the design: (1) the one-dimensional window prediction collapses when
// availability depends on dynamic resource consumption, and (2) preferring
// fast clients excludes a large share of the population entirely.
type REFL struct {
	cfg REFLConfig
	rng *rand.Rand
	src *rngstate.Source

	// history[id] is a ring of recent availability observations.
	history map[int][]bool
	// respSecs is an EMA of observed response times.
	respSecs map[int]float64
	lastPart map[int]int // round of last participation
}

// NewREFL constructs a REFL selector (Window 8, AvailThreshold 0.6 by
// default).
func NewREFL(cfg REFLConfig) *REFL {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.AvailThreshold <= 0 {
		cfg.AvailThreshold = 0.6
	}
	src := rngstate.New(cfg.Seed)
	return &REFL{
		cfg:      cfg,
		rng:      rand.New(src),
		src:      src,
		history:  make(map[int][]bool),
		respSecs: make(map[int]float64),
		lastPart: make(map[int]int),
	}
}

// Name implements Selector.
func (r *REFL) Name() string { return "refl" }

// Select implements Selector: observe availability, predict windows, and
// choose the fastest predicted-available clients.
func (r *REFL) Select(info RoundInfo, pool []*device.Client, k int) []int {
	if k > len(pool) {
		k = len(pool)
	}
	// The server pings clients each round (REFL's availability reports).
	var candidates []*device.Client
	for _, c := range pool {
		avail := c.ResourcesAt(info.Round).Available
		h := append(r.history[c.ID], avail)
		if len(h) > r.cfg.Window {
			h = h[len(h)-r.cfg.Window:]
		}
		r.history[c.ID] = h
		if r.predictAvailable(c.ID) {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		candidates = pool
	}
	return topKByScore(candidates, func(c *device.Client) float64 {
		// Fast clients first. Unseen clients get a speed prior from the
		// estimated response time so the very first rounds are not random.
		t, ok := r.respSecs[c.ID]
		if !ok {
			t = device.EstimateResponseSeconds(c, info.Round, info.Work)
		}
		return -t
	}, k, r.rng)
}

// predictAvailable is REFL's window predictor. It combines the base-rate
// test (available in at least AvailThreshold of recent observations) with
// a window-persistence estimate: from the observed ON→ON transition
// frequency it predicts whether a currently-available client's window
// will persist through the next round. Both estimates share the paper's
// criticized premise — that availability is a one-dimensional window
// whose future can be read off recent history.
func (r *REFL) predictAvailable(id int) bool {
	h := r.history[id]
	if len(h) == 0 {
		return true // optimistic about unseen clients
	}
	n := 0
	for _, a := range h {
		if a {
			n++
		}
	}
	if float64(n)/float64(len(h)) < r.cfg.AvailThreshold {
		return false
	}
	// Persistence: estimate P(on_{t+1} | on_t) from adjacent pairs; only
	// trust windows that historically persist.
	onPairs, onPersist := 0, 0
	for i := 1; i < len(h); i++ {
		if h[i-1] {
			onPairs++
			if h[i] {
				onPersist++
			}
		}
	}
	if onPairs == 0 {
		return h[len(h)-1]
	}
	persist := float64(onPersist) / float64(onPairs)
	return h[len(h)-1] && persist >= 0.5
}

// Observe implements Selector.
func (r *REFL) Observe(fb Feedback) {
	r.lastPart[fb.ClientID] = fb.Round
	const ema = 0.5
	secs := fb.Outcome.Cost.TotalSeconds
	if !fb.Outcome.Completed {
		// Treat a dropout as a very slow response.
		secs = math.Max(secs*2, 1)
	}
	if prev, ok := r.respSecs[fb.ClientID]; ok {
		r.respSecs[fb.ClientID] = ema*secs + (1-ema)*prev
	} else {
		r.respSecs[fb.ClientID] = secs
	}
}
