package selection

import (
	"math"
	"math/rand"
	"sort"

	"floatfl/internal/device"
)

// PopulationView is the lazy population handle selectors draw from: client
// state is derived on demand, so a selector must probe clients it is
// actually considering rather than scan the whole population. The fl
// engines pass their population facade here; Client may derive (and cache)
// the client, so calls are confined to the single-threaded dispatch pass —
// the same contract Select already has.
type PopulationView interface {
	NumClients() int
	Client(id int) *device.Client
}

// LazySelector selects from a PopulationView without materializing the
// population. Selection probes clients for availability itself (the eager
// path's checked-in prefilter would be an O(population) scan), so the
// returned IDs are available at info.Round, distinct, and at most k.
//
// All built-in selectors implement it. Probe-bounded selectors (Oort's
// exploration, REFL's ping sample) see a random sample of the population
// per round instead of all of it — the documented semantic difference of
// lazy mode; Random is distribution-identical to its eager self.
type LazySelector interface {
	Selector
	SelectLazy(info RoundInfo, view PopulationView, k int) []int
}

// PermSampler walks a uniform random permutation of [0, n) lazily: Next
// performs one Fisher-Yates step using a sparse swap map, so drawing m
// elements costs O(m) memory regardless of n. Distinctness is inherited
// from the permutation. It is the sampling primitive behind every lazy
// selector (and the async engine's launch sampling).
type PermSampler struct {
	rng   *rand.Rand
	n, i  int
	swaps map[int]int
}

// NewPermSampler constructs a sampler over [0, n) drawing from rng.
func NewPermSampler(rng *rand.Rand, n int) *PermSampler {
	return &PermSampler{rng: rng, n: n, swaps: make(map[int]int)}
}

func (s *PermSampler) at(k int) int {
	if v, ok := s.swaps[k]; ok {
		return v
	}
	return k
}

// Next returns the permutation's next element, false when exhausted.
func (s *PermSampler) Next() (int, bool) {
	if s.i >= s.n {
		return 0, false
	}
	j := s.i + s.rng.Intn(s.n-s.i)
	vi, vj := s.at(s.i), s.at(j)
	s.swaps[s.i], s.swaps[j] = vj, vi
	s.i++
	return vj, true
}

// SelectLazy implements LazySelector: walk a uniform random permutation,
// keeping the first k currently-available clients — exactly the eager
// "random k-subset of checked-in clients" distribution, without the
// O(population) check-in scan.
func (r *Random) SelectLazy(info RoundInfo, view PopulationView, k int) []int {
	n := view.NumClients()
	if k > n {
		k = n
	}
	ps := NewPermSampler(r.rng, n)
	out := make([]int, 0, k)
	for len(out) < k {
		id, ok := ps.Next()
		if !ok {
			break
		}
		if view.Client(id).ResourcesAt(info.Round).Available {
			out = append(out, id)
		}
	}
	return out
}

// lazyProbeBudget bounds how many clients a probe-sampled selector derives
// per round beyond its target: generous enough that a typical availability
// rate fills k, bounded so a blackout round costs O(k), not O(population).
func lazyProbeBudget(k, n int) int {
	budget := 8*k + 64
	if budget > n {
		budget = n
	}
	return budget
}

// SelectLazy implements LazySelector for Oort: the exploration slice draws
// from a probe-bounded random sample of never-tried clients, and
// exploitation ranks the *known* set (clients with observed feedback —
// already O(tried), not O(population)) by Oort utility, walking best-first
// and admitting only currently-available clients.
func (o *Oort) SelectLazy(info RoundInfo, view PopulationView, k int) []int {
	n := view.NumClients()
	if k > n {
		k = n
	}
	preferred := o.cfg.PreferredDurationSec
	if preferred <= 0 {
		if o.pacerT <= 0 {
			o.pacerT = info.DeadlineSec * 0.8
			if o.pacerT <= 0 {
				o.pacerT = 60
			}
		}
		o.pace()
		preferred = o.pacerT
	}

	nExplore := int(math.Round(o.cfg.ExploreFrac * float64(k)))
	if nExplore > k {
		nExplore = k
	}
	chosen := make([]int, 0, k)
	inChosen := make(map[int]bool, k)
	ps := NewPermSampler(o.rng, n)
	for probes := lazyProbeBudget(nExplore, n); probes > 0 && len(chosen) < nExplore; probes-- {
		id, ok := ps.Next()
		if !ok {
			break
		}
		if o.tried[id] {
			continue
		}
		if view.Client(id).ResourcesAt(info.Round).Available {
			chosen = append(chosen, id)
			inChosen[id] = true
		}
	}

	// Exploitation over the known set, in sorted-ID order for determinism.
	known := make([]int, 0, len(o.tried))
	for id := range o.tried {
		known = append(known, id)
	}
	sort.Ints(known)
	type scored struct {
		id    int
		score float64
		tie   float64
	}
	rank := make([]scored, 0, len(known))
	blacklisted := make([]scored, 0)
	for _, id := range known {
		if inChosen[id] {
			continue
		}
		u := o.utility(id, preferred)
		s := scored{id: id, score: u, tie: o.rng.Float64()}
		if math.IsInf(u, -1) {
			blacklisted = append(blacklisted, s)
			continue
		}
		rank = append(rank, s)
	}
	byScore := func(ss []scored) func(i, j int) bool {
		return func(i, j int) bool {
			if ss[i].score != ss[j].score {
				return ss[i].score > ss[j].score
			}
			return ss[i].tie < ss[j].tie
		}
	}
	sort.Slice(rank, byScore(rank))
	sort.Slice(blacklisted, byScore(blacklisted))
	// Walk best-first, probing availability; blacklisted clients are the
	// last resort, as in the eager path.
	for _, tier := range [][]scored{rank, blacklisted} {
		for _, s := range tier {
			if len(chosen) >= k {
				return chosen
			}
			if view.Client(s.id).ResourcesAt(info.Round).Available {
				chosen = append(chosen, s.id)
				inChosen[s.id] = true
			}
		}
	}
	// Unfilled slots (cold start: nothing known yet) fall back to random
	// exploration of untried clients.
	for probes := lazyProbeBudget(k-len(chosen), n); probes > 0 && len(chosen) < k; probes-- {
		id, ok := ps.Next()
		if !ok {
			break
		}
		if inChosen[id] {
			continue
		}
		if view.Client(id).ResourcesAt(info.Round).Available {
			chosen = append(chosen, id)
			inChosen[id] = true
		}
	}
	return chosen
}

// SelectLazy implements LazySelector for REFL: the server pings a
// probe-bounded random sample each round (lazy REFL cannot ping a million
// clients), feeds the observations into the per-client availability
// histories, and picks the fastest predicted-available clients from the
// sample.
func (r *REFL) SelectLazy(info RoundInfo, view PopulationView, k int) []int {
	n := view.NumClients()
	if k > n {
		k = n
	}
	ps := NewPermSampler(r.rng, n)
	probed := make([]int, 0, lazyProbeBudget(k, n))
	avail := make(map[int]bool, lazyProbeBudget(k, n))
	for probes := lazyProbeBudget(k, n); probes > 0; probes-- {
		id, ok := ps.Next()
		if !ok {
			break
		}
		a := view.Client(id).ResourcesAt(info.Round).Available
		probed = append(probed, id)
		avail[id] = a
		h := append(r.history[id], a)
		if len(h) > r.cfg.Window {
			h = h[len(h)-r.cfg.Window:]
		}
		r.history[id] = h
	}
	candidates := make([]int, 0, len(probed))
	for _, id := range probed {
		// REFL's window prediction, additionally gated on the ping result:
		// a lazy server only dispatches to clients that answered.
		if avail[id] && r.predictAvailable(id) {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		for _, id := range probed {
			if avail[id] {
				candidates = append(candidates, id)
			}
		}
	}
	type scored struct {
		id    int
		score float64
		tie   float64
	}
	ss := make([]scored, len(candidates))
	for i, id := range candidates {
		t, ok := r.respSecs[id]
		if !ok {
			t = device.EstimateResponseSeconds(view.Client(id), info.Round, info.Work)
		}
		ss[i] = scored{id: id, score: -t, tie: r.rng.Float64()}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].tie < ss[j].tie
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].id
	}
	return out
}
