// Package selection implements the client-selection algorithms FLOAT is
// evaluated against: Random (FedAvg's policy), Oort's utility-guided
// selection, and REFL's availability-window prediction. FedBuff's
// over-selection is implemented by the asynchronous engine in internal/fl,
// which keeps a concurrency target filled via the Random selector.
//
// Each algorithm is faithful to the behaviour the paper measures rather
// than to the full original codebase: Oort prefers clients with high
// statistical utility and fast responses (and therefore biases toward
// efficient clients); REFL predicts each client's availability from its
// recent history and assumes the window holds for the whole round — the
// exact assumption the paper shows failing under dynamic resources.
package selection

import (
	"math"
	"math/rand"
	"sort"

	"floatfl/internal/device"
	"floatfl/internal/rngstate"
)

// RoundInfo carries the context a selector may use when choosing clients.
type RoundInfo struct {
	Round       int
	Work        device.WorkSpec
	DeadlineSec float64
}

// Feedback reports one executed client-round back to the selector.
type Feedback struct {
	ClientID int
	Round    int
	Outcome  device.Outcome
	// StatUtility is the loss-based statistical utility of the client's
	// update (Oort's |B|·sqrt(mean squared loss) signal); zero if unknown.
	StatUtility float64
}

// Selector chooses k clients each round and learns from feedback.
// Selectors are used single-threaded: the engines call Select on the
// round's dispatch pass and Observe on the collect pass, in selection
// order, from one goroutine — even when client execution itself is
// parallel.
type Selector interface {
	Name() string
	// Select returns the IDs of up to k clients from the pool. The IDs
	// should be distinct: the engines execute selected clients
	// concurrently, which is only safe across distinct clients, and they
	// fall back to sequential execution when a selection repeats an ID.
	Select(info RoundInfo, pool []*device.Client, k int) []int
	// Observe ingests the outcome of a client round.
	Observe(fb Feedback)
}

// Random selects uniformly at random — FedAvg's policy.
type Random struct {
	rng *rand.Rand
	src *rngstate.Source
}

// NewRandom returns the FedAvg random selector.
func NewRandom(seed int64) *Random {
	src := rngstate.New(seed)
	return &Random{rng: rand.New(src), src: src}
}

// Name implements Selector.
func (r *Random) Name() string { return "fedavg" }

// Select implements Selector: a uniform k-subset of the pool.
func (r *Random) Select(_ RoundInfo, pool []*device.Client, k int) []int {
	if k > len(pool) {
		k = len(pool)
	}
	perm := r.rng.Perm(len(pool))
	out := make([]int, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx].ID)
	}
	return out
}

// Observe implements Selector (random selection learns nothing).
func (r *Random) Observe(Feedback) {}

// topKByScore returns the client IDs with the k highest scores, shuffling
// ties deterministically via the provided rng.
func topKByScore(pool []*device.Client, score func(*device.Client) float64, k int, rng *rand.Rand) []int {
	type scored struct {
		id    int
		score float64
		tie   float64
	}
	ss := make([]scored, len(pool))
	for i, c := range pool {
		ss[i] = scored{id: c.ID, score: score(c), tie: rng.Float64()}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].tie < ss[j].tie
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].id
	}
	return out
}

// clamp01 bounds x to [0, 1].
func clamp01(x float64) float64 {
	return math.Max(0, math.Min(1, x))
}
