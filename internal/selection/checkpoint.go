// Checkpoint support: every built-in selector implements
// checkpoint.Stateful structurally (no import needed). State blobs are
// JSON with map-keyed content emitted deterministically — encoding/json
// sorts map keys, and explicit ID lists are sorted before marshaling — so
// a snapshot of identical selector state is byte-identical across
// processes. RNG streams are serialized as (seed-implied) draw positions
// via rngstate; restore seeks the existing stream rather than replacing
// it, which keeps the selector's seed wiring intact.
package selection

import (
	"encoding/json"
	"fmt"
	"sort"
)

type randomState struct {
	Draws uint64 `json:"draws"`
}

// CheckpointState captures the Random selector (its RNG position is its
// only mutable state).
func (r *Random) CheckpointState() ([]byte, error) {
	return json.Marshal(randomState{Draws: r.src.Pos()})
}

// RestoreCheckpoint restores a Random selector snapshot.
func (r *Random) RestoreCheckpoint(data []byte) error {
	var st randomState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("selection: random state: %w", err)
	}
	r.src.SeekTo(st.Draws)
	return nil
}

type oortState struct {
	Draws       uint64          `json:"draws"`
	StatUtil    map[int]float64 `json:"stat_util,omitempty"`
	RespSecs    map[int]float64 `json:"resp_secs,omitempty"`
	Tried       []int           `json:"tried,omitempty"`
	Failures    map[int]int     `json:"failures,omitempty"`
	PacerT      float64         `json:"pacer_t"`
	WindowOK    int             `json:"window_ok"`
	WindowTotal int             `json:"window_total"`
}

// CheckpointState captures the Oort selector: utility and response EMAs,
// the known set, blacklist counters, pacer state, and the RNG position.
func (o *Oort) CheckpointState() ([]byte, error) {
	st := oortState{
		Draws:       o.src.Pos(),
		StatUtil:    o.statUtil,
		RespSecs:    o.respSecs,
		Failures:    o.failures,
		PacerT:      o.pacerT,
		WindowOK:    o.windowOK,
		WindowTotal: o.windowTotal,
	}
	for id := range o.tried {
		st.Tried = append(st.Tried, id)
	}
	sort.Ints(st.Tried)
	return json.Marshal(st)
}

// RestoreCheckpoint restores an Oort selector snapshot.
func (o *Oort) RestoreCheckpoint(data []byte) error {
	var st oortState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("selection: oort state: %w", err)
	}
	o.statUtil = orEmptyF(st.StatUtil)
	o.respSecs = orEmptyF(st.RespSecs)
	o.failures = st.Failures
	if o.failures == nil {
		o.failures = make(map[int]int)
	}
	o.tried = make(map[int]bool, len(st.Tried))
	for _, id := range st.Tried {
		o.tried[id] = true
	}
	o.pacerT = st.PacerT
	o.windowOK = st.WindowOK
	o.windowTotal = st.WindowTotal
	o.src.SeekTo(st.Draws)
	return nil
}

type reflState struct {
	Draws    uint64          `json:"draws"`
	History  map[int][]bool  `json:"history,omitempty"`
	RespSecs map[int]float64 `json:"resp_secs,omitempty"`
	LastPart map[int]int     `json:"last_part,omitempty"`
}

// CheckpointState captures the REFL selector: availability histories,
// response EMAs, participation recency, and the RNG position.
func (r *REFL) CheckpointState() ([]byte, error) {
	return json.Marshal(reflState{
		Draws:    r.src.Pos(),
		History:  r.history,
		RespSecs: r.respSecs,
		LastPart: r.lastPart,
	})
}

// RestoreCheckpoint restores a REFL selector snapshot.
func (r *REFL) RestoreCheckpoint(data []byte) error {
	var st reflState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("selection: refl state: %w", err)
	}
	r.history = st.History
	if r.history == nil {
		r.history = make(map[int][]bool)
	}
	r.respSecs = orEmptyF(st.RespSecs)
	r.lastPart = st.LastPart
	if r.lastPart == nil {
		r.lastPart = make(map[int]int)
	}
	r.src.SeekTo(st.Draws)
	return nil
}

// orEmptyF replaces a nil float map (omitted empty field) with an empty
// one, preserving the constructors' never-nil invariant.
func orEmptyF(m map[int]float64) map[int]float64 {
	if m == nil {
		return make(map[int]float64)
	}
	return m
}
