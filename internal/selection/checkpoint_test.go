package selection

import (
	"bytes"
	"testing"

	"floatfl/internal/device"
)

// drive runs a selector through rounds of selection + feedback over a
// small materialized pool, returning the concatenated selections.
func drive(t *testing.T, s Selector, pool []*device.Client, start, rounds int) []int {
	t.Helper()
	var out []int
	for round := start; round < start+rounds; round++ {
		info := RoundInfo{Round: round, DeadlineSec: 120, Work: device.WorkSpec{RefFLOPsPerSample: 1e6, RefParams: 1e5, Samples: 64, Epochs: 1}}
		ids := s.Select(info, pool, 4)
		out = append(out, ids...)
		for i, id := range ids {
			s.Observe(Feedback{
				ClientID:    id,
				Round:       round,
				Outcome:     device.Outcome{Completed: i%2 == 0, Reason: device.DropDeadline, Cost: device.Cost{TotalSeconds: float64(10 + id)}},
				StatUtility: float64(id%7) + 0.5,
			})
		}
	}
	return out
}

func testPool(t *testing.T) []*device.Client {
	t.Helper()
	pool, err := device.NewPopulation(device.PopulationConfig{Clients: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestSelectorCheckpointResume proves, for each built-in selector, that
// running 2N rounds equals running N rounds, snapshotting, restoring into
// a freshly seeded selector, and running N more — and that the state blob
// itself is byte-stable across identical captures.
func TestSelectorCheckpointResume(t *testing.T) {
	type stateful interface {
		Selector
		CheckpointState() ([]byte, error)
		RestoreCheckpoint([]byte) error
	}
	makers := map[string]func() stateful{
		"random": func() stateful { return NewRandom(77) },
		"oort":   func() stateful { return NewOort(OortConfig{Seed: 77}) },
		"refl":   func() stateful { return NewREFL(REFLConfig{Seed: 77}) },
	}
	for name, mk := range makers {
		t.Run(name, func(t *testing.T) {
			// Full run: 12 rounds on one pool.
			full := mk()
			fullPicks := drive(t, full, testPool(t), 0, 12)

			// Prefix run + snapshot.
			prefix := mk()
			prefixPicks := drive(t, prefix, testPool(t), 0, 6)
			blob, err := prefix.CheckpointState()
			if err != nil {
				t.Fatalf("CheckpointState: %v", err)
			}
			blob2, err := prefix.CheckpointState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("CheckpointState is not byte-stable:\n%s\n%s", blob, blob2)
			}

			// Restore into a fresh selector; note the pool is rebuilt too —
			// trace state is driven by ResourcesAt probes, and both arms
			// probe identically.
			resumed := mk()
			if err := resumed.RestoreCheckpoint(blob); err != nil {
				t.Fatalf("RestoreCheckpoint: %v", err)
			}
			resumedPool := testPool(t)
			// Catch the pool's traces up to the prefix rounds the way the
			// engines' deterministic replay does: identical probe sequence.
			drive(t, mk(), resumedPool, 0, 6)
			resumedPicks := drive(t, resumed, resumedPool, 6, 6)

			got := append(append([]int(nil), prefixPicks...), resumedPicks...)
			if len(got) != len(fullPicks) {
				t.Fatalf("pick count %d, want %d", len(got), len(fullPicks))
			}
			for i := range got {
				if got[i] != fullPicks[i] {
					t.Fatalf("picks diverge at %d: resumed %v vs full %v", i, got, fullPicks)
				}
			}
		})
	}
}
