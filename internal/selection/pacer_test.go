package selection

import (
	"math"
	"testing"

	"floatfl/internal/device"
)

func TestOortPacerRelaxesWhenClientsMiss(t *testing.T) {
	o := NewOort(OortConfig{Seed: 1})
	p := pool(t, 10)
	o.Select(info(0), p, 5) // initializes pacerT from the deadline
	t0 := o.pacerT
	if t0 <= 0 {
		t.Fatal("pacer not initialized")
	}
	// Feed a full window of completions slower than the target.
	for i := 0; i < 25; i++ {
		o.Observe(Feedback{ClientID: i % 10, Outcome: device.Outcome{
			Completed: true, Cost: device.Cost{TotalSeconds: t0 * 3},
		}})
	}
	o.Select(info(1), p, 5)
	if o.pacerT <= t0 {
		t.Fatalf("pacer did not relax: %v -> %v", t0, o.pacerT)
	}
}

func TestOortPacerTightensWhenEveryoneBeatsIt(t *testing.T) {
	o := NewOort(OortConfig{Seed: 2})
	p := pool(t, 10)
	o.Select(info(0), p, 5)
	t0 := o.pacerT
	for i := 0; i < 25; i++ {
		o.Observe(Feedback{ClientID: i % 10, Outcome: device.Outcome{
			Completed: true, Cost: device.Cost{TotalSeconds: t0 / 10},
		}})
	}
	o.Select(info(1), p, 5)
	if o.pacerT >= t0 {
		t.Fatalf("pacer did not tighten: %v -> %v", t0, o.pacerT)
	}
}

func TestOortExplicitPreferredDisablesPacer(t *testing.T) {
	o := NewOort(OortConfig{Seed: 3, PreferredDurationSec: 100})
	p := pool(t, 10)
	for i := 0; i < 30; i++ {
		o.Observe(Feedback{ClientID: i % 10, Outcome: device.Outcome{
			Completed: true, Cost: device.Cost{TotalSeconds: 1000},
		}})
	}
	o.Select(info(1), p, 5)
	if o.pacerT != 0 {
		t.Fatalf("explicit preferred duration should keep the pacer off, pacerT=%v", o.pacerT)
	}
}

func TestOortBlacklistExcludesChronicDroppers(t *testing.T) {
	o := NewOort(OortConfig{Seed: 4, BlacklistAfter: 3, ExploreFrac: 0.0001})
	for i := 0; i < 3; i++ {
		o.Observe(Feedback{ClientID: 0, Outcome: device.Outcome{Completed: false,
			Cost: device.Cost{TotalSeconds: 100}}})
	}
	if !math.IsInf(o.utility(0, 60), -1) {
		t.Fatal("blacklisted client should have -inf utility")
	}
	// A completion resets the streak.
	o.Observe(Feedback{ClientID: 0, Outcome: device.Outcome{Completed: true,
		Cost: device.Cost{TotalSeconds: 10}}})
	if math.IsInf(o.utility(0, 60), -1) {
		t.Fatal("completion should lift the blacklist")
	}
}

func TestREFLPersistencePredictor(t *testing.T) {
	r := NewREFL(REFLConfig{Seed: 5, Window: 8, AvailThreshold: 0.5})
	// Flapping client: ON half the time but never two rounds in a row —
	// base rate passes, persistence fails.
	r.history[1] = []bool{true, false, true, false, true, false, true, false}
	if r.predictAvailable(1) {
		t.Fatal("flapping client should be predicted unavailable")
	}
	// Stable client: long ON runs, currently ON.
	r.history[2] = []bool{true, true, true, true, false, true, true, true}
	if !r.predictAvailable(2) {
		t.Fatal("stable ON client should be predicted available")
	}
	// Currently OFF client fails the last-observation gate.
	r.history[3] = []bool{true, true, true, true, true, true, true, false}
	if r.predictAvailable(3) {
		t.Fatal("currently-OFF client should be predicted unavailable")
	}
}

func TestOortSelectSkipsBlacklisted(t *testing.T) {
	p := pool(t, 10)
	o := NewOort(OortConfig{Seed: 6, BlacklistAfter: 2, ExploreFrac: 0.0001})
	// Blacklist clients 0-4; mark the rest as good.
	for id := 0; id < 10; id++ {
		for rep := 0; rep < 2; rep++ {
			out := device.Outcome{Completed: id >= 5, Cost: device.Cost{TotalSeconds: 10}}
			if !out.Completed {
				out.Reason = device.DropDeadline
			}
			o.Observe(Feedback{ClientID: id, Outcome: out})
		}
	}
	ids := o.Select(info(1), p, 5)
	for _, id := range ids {
		if id < 5 {
			t.Fatalf("blacklisted client %d selected while good clients available", id)
		}
	}
	// When only blacklisted clients can fill the round, they are used.
	ids = o.Select(info(2), p, 10)
	if len(ids) != 10 {
		t.Fatalf("fallback did not fill the round: %d selected", len(ids))
	}
}
