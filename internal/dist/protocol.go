// Package dist is a minimal but real federated-learning deployment over
// HTTP: an aggregator server that hands out the global model and collects
// compressed updates, and a client runtime that trains locally and reports
// its resource state each round. It exists to demonstrate the paper's
// non-intrusiveness claim outside the simulator: the server embeds the
// same fl.Controller interface (FLOAT, heuristic, static, or none) and the
// wire protocol carries the same quantized/pruned updates the simulator
// models, encoded with the opt codec.
//
// The protocol is deliberately small:
//
//	POST /v1/register  {name, gflops, memory_mb}        -> {client_id, training config}
//	POST /v1/task      {client_id, resources}            -> {round, technique, model, lease} | 204
//	POST /v1/update    {client_id, round, delta, ...}    -> 200 | 409 (stale round/lease)
//	GET  /v1/status                                      -> {round, leases, drops, holdout accuracy}
//
// Failure semantics (see DESIGN.md "Failure model & recovery"): register
// is idempotent per client name; every handed-out task carries a lease the
// server reclaims on silent death; 204 (no slot) and 409 (stale round) are
// terminal protocol outcomes, while transport errors and 5xx are transient
// and retried by the client with seeded exponential backoff.
package dist

import (
	"math"

	"floatfl/internal/device"
)

// RegisterRequest announces a client and its device capability; the
// capability feeds FLOAT's capacity-aware state encoding.
type RegisterRequest struct {
	Name     string  `json:"name"`
	GFLOPS   float64 `json:"gflops"`
	MemoryMB float64 `json:"memory_mb"`
}

// TrainSpec is the training configuration the server pushes to clients.
type TrainSpec struct {
	Arch      string  `json:"arch"`
	InDim     int     `json:"in_dim"`
	Classes   int     `json:"classes"`
	Epochs    int     `json:"epochs"`
	BatchSize int     `json:"batch_size"`
	LR        float64 `json:"lr"`
	// QuantBits is the wire quantization of the update codec (16 default).
	QuantBits int `json:"quant_bits"`
}

// RegisterResponse assigns the client its ID and configuration.
type RegisterResponse struct {
	ClientID int       `json:"client_id"`
	Spec     TrainSpec `json:"spec"`
}

// ResourceReport is the client's self-reported availability snapshot —
// the "system-level resource availability information" the paper notes is
// all FLOAT needs from clients (data never leaves the device).
type ResourceReport struct {
	CPUFrac       float64 `json:"cpu_frac"`
	MemFrac       float64 `json:"mem_frac"`
	NetFrac       float64 `json:"net_frac"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	Battery       float64 `json:"battery"`
	// DeadlineDiff is the human-feedback signal: fractional overrun of the
	// previous round's deadline (0 when met).
	DeadlineDiff float64 `json:"deadline_diff"`
}

// sanitized clamps a self-report into physically meaningful ranges. The
// server applies this at decode time: these fields drive every cost
// estimate the Controller makes, so one malformed report (non-finite,
// negative, or absurdly large) must not poison technique selection for
// the whole federation. Non-finite values degrade to the pessimistic end
// of each range rather than the optimistic one.
func (r ResourceReport) sanitized() ResourceReport {
	return ResourceReport{
		CPUFrac:       clampFrac(r.CPUFrac),
		MemFrac:       clampFrac(r.MemFrac),
		NetFrac:       clampFrac(r.NetFrac),
		BandwidthMbps: clampRange(r.BandwidthMbps, 0, 1e5),
		Battery:       clampFrac(r.Battery),
		DeadlineDiff:  clampRange(r.DeadlineDiff, 0, 10),
	}
}

// clampFrac maps a reported fraction into [0,1]; non-finite reports to 0.
func clampFrac(x float64) float64 { return clampRange(x, 0, 1) }

func clampRange(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// toResources converts a report into the simulator's resource type so the
// same Controller implementations work unmodified.
func (r ResourceReport) toResources() device.Resources {
	return device.Resources{
		Available:     true,
		CPUFrac:       r.CPUFrac,
		MemFrac:       r.MemFrac,
		NetFrac:       r.NetFrac,
		BandwidthMbps: r.BandwidthMbps,
		Battery:       r.Battery,
	}
}

// TaskRequest asks for this round's work.
type TaskRequest struct {
	ClientID  int            `json:"client_id"`
	Resources ResourceReport `json:"resources"`
}

// TaskResponse carries the global model and the technique FLOAT assigned.
type TaskResponse struct {
	Round     int    `json:"round"`
	Technique string `json:"technique"`
	// Model is the serialized global parameters (nn binary format).
	Model []byte `json:"model"`
	// DeadlineSeconds is advisory for real deployments; the in-process
	// tests ignore it.
	DeadlineSeconds float64 `json:"deadline_seconds"`
	// LeaseSeconds is how long the server will hold this client's slot
	// before reclaiming it: an upload after that may be rejected with 409.
	LeaseSeconds float64 `json:"lease_seconds"`
}

// UpdateRequest uploads a trained, technique-transformed, codec-compressed
// model delta.
type UpdateRequest struct {
	ClientID  int     `json:"client_id"`
	Round     int     `json:"round"`
	Technique string  `json:"technique"`
	Delta     []byte  `json:"delta"` // opt.CompressUpdate output
	Samples   int     `json:"samples"`
	TrainSecs float64 `json:"train_secs"`
	// AccImprove is the client's local-accuracy improvement (reward signal).
	AccImprove float64 `json:"acc_improve"`
}

// StatusResponse summarizes server state, including the fault-tolerance
// counters (lease and round-timer activity, per-DropReason totals).
type StatusResponse struct {
	Round       int     `json:"round"`
	Registered  int     `json:"registered"`
	HoldoutAcc  float64 `json:"holdout_acc"`
	UpdatesSeen int     `json:"updates_seen"`
	// Outstanding is how many tasks are currently handed out for this
	// round; BufferedUpdates how many await aggregation.
	Outstanding     int `json:"outstanding"`
	BufferedUpdates int `json:"buffered_updates"`
	// ActiveLeases counts live lease timers; LeaseExpiries how many tasks
	// died silently and were reclaimed; PartialAggregations how many
	// rounds the round timer advanced below AggregateK.
	ActiveLeases        int `json:"active_leases"`
	LeaseExpiries       int `json:"lease_expiries"`
	PartialAggregations int `json:"partial_aggregations"`
	// Drops tallies dropouts by device.DropReason string.
	Drops map[string]int `json:"drops,omitempty"`
	// Draining reports drain mode (POST /v1/drain): no new tasks are
	// handed out, so Outstanding only falls.
	Draining bool `json:"draining,omitempty"`
}

// DrainRequest toggles drain mode; an empty body starts draining.
type DrainRequest struct {
	Off bool `json:"off,omitempty"`
}

// DrainResponse reports drain state and the work still in flight; poll
// /v1/status until Outstanding reaches zero, then GET /v1/snapshot.
type DrainResponse struct {
	Draining        bool `json:"draining"`
	Outstanding     int  `json:"outstanding"`
	BufferedUpdates int  `json:"buffered_updates"`
}
