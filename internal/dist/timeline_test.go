package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"floatfl/internal/obs"
)

// runRounds drives the registered clients through the given rounds.
func runRounds(t *testing.T, clients []*Client, rounds int) {
	t.Helper()
	ctx := context.Background()
	for round := 0; round < rounds; round++ {
		for _, c := range clients {
			if ok, err := c.Step(ctx, round); err != nil || !ok {
				t.Fatalf("client %d round %d: ok=%v err=%v", c.ID(), round, ok, err)
			}
		}
	}
}

// getTimeline fetches /v1/timeline (optionally with ?since=) and decodes
// the response.
func getTimeline(t *testing.T, base, query string) obs.TimelineResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/timeline" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/timeline%s: status %d", query, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var tr obs.TimelineResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTimelineEndpointIncrementalReads drives aggregations on a fake
// clock and reads the timeline back incrementally: one sample per
// aggregation, timestamped in fake-clock seconds since server start, with
// ?since= returning exactly the unseen suffix.
func TestTimelineEndpointIncrementalReads(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	srv, hs, fed := testServerConfig(t, ServerConfig{AggregateK: 2, Clock: clk})
	clients := []*Client{
		registeredClient(t, hs, fed, 0),
		registeredClient(t, hs, fed, 1),
	}

	if tr := getTimeline(t, hs.URL, ""); tr.Latest != -1 || len(tr.Samples) != 0 {
		t.Fatalf("pre-aggregation timeline = %+v", tr)
	}

	clk.Advance(3 * time.Second)
	runRounds(t, clients, 1)

	tr := getTimeline(t, hs.URL, "")
	if tr.Latest != 0 || len(tr.Samples) != 1 {
		t.Fatalf("after round 0: %+v", tr)
	}
	s := tr.Samples[0]
	if s.Round != 0 {
		t.Fatalf("sample round = %d", s.Round)
	}
	if s.Clock != 3 {
		t.Fatalf("sample clock = %v, want 3 (fake-clock seconds since start)", s.Clock)
	}
	// The first sample is a full snapshot of the server registry plus the
	// per-aggregation fact.
	for _, name := range []string{"dist_rounds_total", "dist_updates_total", "round_aggregated_updates"} {
		if _, ok := s.Values[name]; !ok {
			t.Errorf("sample missing series %q: %v", name, s.Values)
		}
	}
	if got := s.Values["round_aggregated_updates"]; got != 2 {
		t.Errorf("round_aggregated_updates = %v, want 2", got)
	}

	clk.Advance(4 * time.Second)
	runRounds(t, clients, 1) // clients re-fetch: server is on round 1 internally

	// Incremental read: only the new sample comes back.
	inc := getTimeline(t, hs.URL, "?since=0")
	if len(inc.Samples) != 1 || inc.Samples[0].Round != 1 || inc.Latest != 1 {
		t.Fatalf("since=0: %+v", inc)
	}
	if inc.Samples[0].Clock != 7 {
		t.Fatalf("second sample clock = %v, want 7", inc.Samples[0].Clock)
	}
	// Caught-up poll returns an empty, non-null sample list.
	if caught := getTimeline(t, hs.URL, "?since=1"); caught.Samples == nil || len(caught.Samples) != 0 {
		t.Fatalf("caught-up: %+v", caught)
	}

	// Bad cursors are a typed 400.
	resp, err := http.Get(hs.URL + "/v1/timeline?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("since=nope status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q", ct)
	}
	_ = srv
}

// TestSnapshotCarriesTimeline proves /v1/snapshot → RestoreSnapshot
// continues the same run history: the restored server serves the
// pre-snapshot samples and keeps appending after them.
func TestSnapshotCarriesTimeline(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	srv, hs, fed := testServerConfig(t, ServerConfig{AggregateK: 2, Clock: clk})
	clients := []*Client{
		registeredClient(t, hs, fed, 0),
		registeredClient(t, hs, fed, 1),
	}
	clk.Advance(2 * time.Second)
	runRounds(t, clients, 2)
	before := getTimeline(t, hs.URL, "")
	if len(before.Samples) != 2 {
		t.Fatalf("pre-snapshot samples = %d, want 2", len(before.Samples))
	}

	blob, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	clk2 := NewFakeClock(time.Unix(0, 0))
	srv2, hs2, _ := testServerConfig(t, ServerConfig{AggregateK: 2, Clock: clk2})
	if err := srv2.RestoreSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	after := getTimeline(t, hs2.URL, "")
	a, _ := json.Marshal(before)
	b, _ := json.Marshal(after)
	if string(a) != string(b) {
		t.Fatalf("restored timeline differs:\n%s\nvs\n%s", a, b)
	}
	_ = hs2
}
