package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// ServerConfig parameterizes the aggregator.
type ServerConfig struct {
	Spec TrainSpec
	// AggregateK aggregates once this many updates arrive for the current
	// round (default 4).
	AggregateK int
	// MaxOutstanding bounds how many clients may hold a task for the same
	// round (over-provisioning against dropouts; default 2×AggregateK).
	MaxOutstanding int
	// Controller decides per-client techniques; nil means no acceleration.
	Controller fl.Controller
	// Holdout is evaluated after each aggregation when non-empty.
	Holdout []nn.Sample
	// DeadlineSeconds is advertised to clients with each task (advisory;
	// the lease below is what the server actually enforces).
	DeadlineSeconds float64
	// LeaseSeconds bounds how long a handed-out task may stay outstanding
	// before its slot is reclaimed and the dropout reported to the
	// Controller (default 2×DeadlineSeconds, or 30s without a deadline).
	// Zero after defaulting means leases never expire.
	LeaseSeconds float64
	// RoundSeconds bounds how long a round may run below AggregateK before
	// the buffered updates are aggregated anyway (default 2×LeaseSeconds).
	RoundSeconds float64
	// MinUpdates is the floor for a timer-driven partial aggregation
	// (default 1); a round never advances on an empty buffer.
	MinUpdates int
	// Clock drives leases and the round timer; nil means the real clock.
	// Tests inject a FakeClock so expiry is deterministic.
	Clock Clock
	Seed  int64
	// Metrics backs the server's operational counters and the /v1/metrics
	// endpoint. Nil gets a private registry — the counters must exist
	// regardless because /v1/status reads them.
	Metrics *obs.Registry
	// Tracer records server-side events (register, lease_grant,
	// lease_expiry, update, round_timer, aggregate) timestamped against
	// Clock; nil disables tracing.
	Tracer *obs.Tracer
}

// Server is the HTTP aggregator. All state is guarded by mu; handlers and
// timer callbacks are safe for concurrent use.
type Server struct {
	mu sync.Mutex

	cfg    ServerConfig
	clock  Clock
	global *nn.Model
	round  int
	closed bool
	// draining stops new task hand-outs (POST /v1/drain) so outstanding
	// work converges to zero ahead of a GET /v1/snapshot.
	draining bool

	nextClientID int
	clients      map[int]*clientInfo
	// byName maps client name → ID so re-registration (a retry after a
	// dropped response) is idempotent instead of leaking clientInfos.
	byName map[string]int

	// outstanding counts tasks handed out for the current round.
	outstanding int
	// buffer of (delta, weight) pending aggregation.
	deltas  []tensor.Vector
	weights []float64

	roundTimer Timer
	roundSeq   uint64

	// obs owns every operational counter (updates, lease expiries,
	// partial aggregations, drops); /v1/status reads them back so status
	// and /v1/metrics can never disagree. start anchors trace timestamps.
	obs        *serverObs
	metrics    *obs.Registry
	start      time.Time
	holdoutAcc float64

	// timeline records one delta-encoded registry sample per aggregation,
	// served incrementally by GET /v1/timeline and carried through
	// /v1/snapshot so a resumed server extends the same run history.
	timeline *obs.Timeline
}

type clientInfo struct {
	name string
	// dev is a capability-only shim so fl.Controller implementations see
	// the same type they see in the simulator.
	dev *device.Client
	// taskRound is the round the client currently holds a task for
	// (-1 when idle).
	taskRound int
	tech      opt.Technique

	// leaseSeq invalidates stale lease-timer callbacks; leaseTimer is the
	// pending expiry for the currently held task (nil when idle).
	leaseSeq    uint64
	leaseTimer  Timer
	leaseExpiry time.Time
}

// NewServer builds an aggregator with a freshly initialized global model.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Spec.Arch == "" || cfg.Spec.InDim <= 0 || cfg.Spec.Classes <= 0 {
		return nil, fmt.Errorf("dist: incomplete TrainSpec %+v", cfg.Spec)
	}
	if cfg.Spec.Epochs <= 0 {
		cfg.Spec.Epochs = 2
	}
	if cfg.Spec.BatchSize <= 0 {
		cfg.Spec.BatchSize = 16
	}
	if cfg.Spec.LR <= 0 {
		cfg.Spec.LR = 0.1
	}
	if cfg.Spec.QuantBits <= 0 {
		cfg.Spec.QuantBits = 16
	}
	if cfg.AggregateK <= 0 {
		cfg.AggregateK = 4
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 2 * cfg.AggregateK
	}
	if cfg.Controller == nil {
		cfg.Controller = fl.NoOpController{}
	}
	if cfg.LeaseSeconds <= 0 {
		if cfg.DeadlineSeconds > 0 {
			cfg.LeaseSeconds = 2 * cfg.DeadlineSeconds
		} else {
			cfg.LeaseSeconds = 30
		}
	}
	if cfg.RoundSeconds <= 0 {
		cfg.RoundSeconds = 2 * cfg.LeaseSeconds
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	rng := newRand(cfg.Seed)
	global, err := nn.NewModel(cfg.Spec.Arch, cfg.Spec.InDim, cfg.Spec.Classes, rng)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		clock:   cfg.Clock,
		global:  global,
		clients: make(map[int]*clientInfo),
		byName:  make(map[string]int),
		obs:     newServerObs(cfg.Metrics, cfg.Tracer),
		metrics: cfg.Metrics,
		start:   cfg.Clock.Now(),
	}
	s.timeline = obs.NewTimeline(cfg.Metrics, obs.DefaultTimelineCapacity)
	s.mu.Lock()
	s.armRoundTimerLocked()
	s.syncGaugesLocked()
	s.mu.Unlock()
	return s, nil
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/task", s.handleTask)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.Handle("/v1/timeline", obs.TimelineHandler(s.timeline))
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/drain", s.handleDrain)
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	// Idempotent per name: a client retrying a register whose response was
	// lost must get its existing identity back, not a leaked duplicate.
	if req.Name != "" {
		if id, ok := s.byName[req.Name]; ok {
			spec := s.cfg.Spec
			s.mu.Unlock()
			writeJSON(w, RegisterResponse{ClientID: id, Spec: spec})
			return
		}
	}
	id := s.nextClientID
	s.nextClientID++
	s.obs.registrations.Inc()
	s.eventLocked("register", s.round, id, req.Name)
	s.clients[id] = &clientInfo{
		name: req.Name,
		dev: &device.Client{
			ID: id,
			Compute: trace.ComputeProfile{
				GFLOPS:         clampFinite(req.GFLOPS, 0.1, 1e4, 10),
				MemoryMB:       clampFinite(req.MemoryMB, 16, 1e6, 2000),
				EnergyCapacity: 2,
			},
		},
		taskRound: -1,
	}
	if req.Name != "" {
		s.byName[req.Name] = id
	}
	s.syncGaugesLocked()
	spec := s.cfg.Spec
	s.mu.Unlock()
	writeJSON(w, RegisterResponse{ClientID: id, Spec: spec})
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !decode(w, r, &req) {
		return
	}
	req.Resources = req.Resources.sanitized()
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, ok := s.clients[req.ClientID]
	if !ok {
		http.Error(w, "dist: unknown client", http.StatusNotFound)
		return
	}
	if ci.taskRound == s.round {
		// Already holds this round's task; re-issue idempotently and renew
		// the lease (the client is demonstrably alive). Drain mode does not
		// block re-issues — a drain must not strand a mid-training client.
		s.grantLeaseLocked(req.ClientID, ci)
	} else if s.draining || s.outstanding >= s.cfg.MaxOutstanding {
		w.WriteHeader(http.StatusNoContent)
		return
	} else {
		res := req.Resources.toResources()
		ci.tech = s.cfg.Controller.Decide(s.round, ci.dev, res, req.Resources.DeadlineDiff)
		ci.taskRound = s.round
		s.outstanding++
		s.grantLeaseLocked(req.ClientID, ci)
	}
	s.syncGaugesLocked()
	blob, err := s.global.MarshalBinary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, TaskResponse{
		Round:           s.round,
		Technique:       ci.tech.String(),
		Model:           blob,
		DeadlineSeconds: s.cfg.DeadlineSeconds,
		LeaseSeconds:    s.cfg.LeaseSeconds,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, ok := s.clients[req.ClientID]
	if !ok {
		http.Error(w, "dist: unknown client", http.StatusNotFound)
		return
	}
	if req.Round != s.round || ci.taskRound != s.round {
		// Stale update from a previous round, or from a lease the server
		// already reclaimed: reject so the client refreshes.
		http.Error(w, "dist: stale round", http.StatusConflict)
		return
	}
	delta, err := opt.DecompressUpdate(req.Delta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(delta) != s.global.NumParams() {
		http.Error(w, "dist: delta size mismatch", http.StatusBadRequest)
		return
	}
	for _, x := range delta {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// A diverged or malicious client must not poison the global
			// model; the same guard the simulator's aggregator applies.
			http.Error(w, "dist: non-finite update rejected", http.StatusBadRequest)
			return
		}
	}
	ci.taskRound = -1
	s.stopLeaseLocked(ci)
	s.outstanding--
	s.obs.updates.Inc()
	s.eventLocked("update", s.round, req.ClientID, "")
	weight := float64(req.Samples)
	if weight <= 0 {
		weight = 1
	}
	s.deltas = append(s.deltas, delta)
	s.weights = append(s.weights, weight)

	// Feed the controller: a returned update is a successful participation.
	// Self-reported reward fields are clamped like the resource report.
	s.cfg.Controller.Feedback(s.round, ci.dev, ci.tech,
		device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: clampFinite(req.TrainSecs, 0, 1e6, 0)}},
		clampReward(req.AccImprove))

	if len(s.deltas) >= s.cfg.AggregateK {
		if err := s.aggregateLocked(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.syncGaugesLocked()
	w.WriteHeader(http.StatusOK)
}

// aggregateLocked applies the buffered weighted deltas and advances the
// round. Clients still holding tasks for the old round will get a 409 on
// upload and re-fetch — the deployment analog of a deadline dropout, which
// is also reported to the controller.
func (s *Server) aggregateLocked() error {
	aggregated := len(s.deltas)
	var totalW float64
	for _, w := range s.weights {
		totalW += w
	}
	if totalW > 0 {
		// Accumulate the weighted mean straight into the global flat buffer
		// (Parameters is a zero-copy view).
		for i := range s.weights {
			s.weights[i] /= totalW
		}
		//lint:allow flat-view-mutation aggregator owns the global model; in-place update is the sanctioned fast path (DESIGN.md buffer ownership)
		tensor.AddWeighted(s.global.Parameters(), s.weights, s.deltas)
	}
	s.deltas = s.deltas[:0]
	s.weights = s.weights[:0]
	s.eventLocked("aggregate", s.round, -1, "")
	s.obs.rounds.Inc()
	s.round++
	s.outstanding = 0
	// Sweep stale task holders in client-ID order: trace emission and
	// controller feedback are order-sensitive, so map iteration order must
	// not reach them.
	stale := make([]int, 0, len(s.clients))
	for id, ci := range s.clients {
		if ci.taskRound >= 0 && ci.taskRound < s.round {
			stale = append(stale, id)
		}
	}
	sort.Ints(stale)
	for _, id := range stale {
		ci := s.clients[id]
		// The round moved on without this client: count it as a deadline
		// miss so FLOAT learns from it.
		s.obs.drops[int(device.DropDeadline)].Inc()
		s.eventLocked("drop", ci.taskRound, id, device.DropDeadline.String())
		s.cfg.Controller.Feedback(ci.taskRound, ci.dev, ci.tech,
			device.Outcome{Completed: false, Reason: device.DropDeadline, DeadlineDiff: 0.5}, 0)
		ci.taskRound = -1
		s.stopLeaseLocked(ci)
	}
	s.armRoundTimerLocked()
	if len(s.cfg.Holdout) > 0 {
		s.holdoutAcc, _ = s.global.Evaluate(s.cfg.Holdout)
		s.obs.holdoutAcc.Set(s.holdoutAcc)
	}
	s.syncGaugesLocked()
	// Sample after the gauges are refreshed so the timeline row for the
	// round that just closed (s.round-1; the counter already advanced)
	// reflects the post-aggregation registry. Timestamped on the injected
	// clock, so a FakeClock makes the timeline deterministic in tests.
	s.timeline.Sample(s.round-1, s.clock.Now().Sub(s.start).Seconds(),
		obs.SeriesValue{Name: "round_aggregated_updates", Value: float64(aggregated)})
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	// Counters come straight off the metrics registry: /v1/status is a
	// projection of /v1/metrics, so the two can never drift apart.
	drops := make(map[string]int, numDropReasons)
	for reason := device.DropNone; reason <= device.DropDeadline; reason++ {
		if n := s.obs.dropReasonCount(reason); n > 0 {
			drops[reason.String()] = n
		}
	}
	activeLeases := 0
	for _, ci := range s.clients {
		if ci.leaseTimer != nil {
			activeLeases++
		}
	}
	resp := StatusResponse{
		Draining:            s.draining,
		Round:               s.round,
		Registered:          len(s.clients),
		HoldoutAcc:          s.holdoutAcc,
		UpdatesSeen:         int(s.obs.updates.Value()),
		Outstanding:         s.outstanding,
		BufferedUpdates:     len(s.deltas),
		ActiveLeases:        activeLeases,
		LeaseExpiries:       int(s.obs.leaseExpiries.Value()),
		PartialAggregations: int(s.obs.partialAggs.Value()),
		Drops:               drops,
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleMetrics serves the registry exposition: text by default, the
// JSON snapshot with ?format=json or an Accept: application/json header.
// Unknown ?format= values get a 400 with a typed JSON error body.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		obs.WriteHTTPError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	obs.ServeMetricsSnapshot(w, r, s.metrics.Snapshot())
}

// Round returns the current aggregation round.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// HoldoutAccuracy returns the last post-aggregation holdout accuracy.
func (s *Server) HoldoutAccuracy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holdoutAcc
}

// LeaseExpiries returns how many handed-out tasks died silently and were
// reclaimed by lease expiry.
func (s *Server) LeaseExpiries() int {
	return int(s.obs.leaseExpiries.Value())
}

// PartialAggregations returns how many rounds were advanced by the round
// timer with fewer than AggregateK updates.
func (s *Server) PartialAggregations() int {
	return int(s.obs.partialAggs.Value())
}

// Metrics exposes the server's registry (the same one /v1/metrics
// serves), for embedding CLIs and tests.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Timeline exposes the per-aggregation run timeline (the same ring
// /v1/timeline serves), for embedding CLIs and tests.
func (s *Server) Timeline() *obs.Timeline { return s.timeline }

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "dist: POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("dist: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}

// clampFinite sanitizes a client-supplied numeric field: non-finite or
// non-positive values fall back to def, finite values are clamped into
// [lo, hi]. (NaN fails every comparison, so a bare `x <= 0` check would
// wave NaN straight through into the cost model.)
func clampFinite(x, lo, hi, def float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
		return def
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// clampReward bounds the self-reported accuracy improvement to a sane
// range so one malformed report cannot dominate the RL reward stream.
func clampReward(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	if x < -1 {
		return -1
	}
	if x > 1 {
		return 1
	}
	return x
}
