package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"

	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/nn"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
	"floatfl/internal/trace"
)

// ServerConfig parameterizes the aggregator.
type ServerConfig struct {
	Spec TrainSpec
	// AggregateK aggregates once this many updates arrive for the current
	// round (default 4).
	AggregateK int
	// MaxOutstanding bounds how many clients may hold a task for the same
	// round (over-provisioning against dropouts; default 2×AggregateK).
	MaxOutstanding int
	// Controller decides per-client techniques; nil means no acceleration.
	Controller fl.Controller
	// Holdout is evaluated after each aggregation when non-empty.
	Holdout []nn.Sample
	// DeadlineSeconds is advertised to clients with each task (advisory:
	// the aggregation buffer, not a timer, advances rounds).
	DeadlineSeconds float64
	Seed            int64
}

// Server is the HTTP aggregator. All state is guarded by mu; handlers are
// safe for concurrent use.
type Server struct {
	mu sync.Mutex

	cfg    ServerConfig
	global *nn.Model
	round  int

	nextClientID int
	clients      map[int]*clientInfo

	// outstanding counts tasks handed out for the current round.
	outstanding int
	// buffer of (delta, weight) pending aggregation.
	deltas  []tensor.Vector
	weights []float64

	updatesSeen int
	holdoutAcc  float64
}

type clientInfo struct {
	name string
	// dev is a capability-only shim so fl.Controller implementations see
	// the same type they see in the simulator.
	dev *device.Client
	// taskRound is the round the client currently holds a task for
	// (-1 when idle).
	taskRound int
	tech      opt.Technique
}

// NewServer builds an aggregator with a freshly initialized global model.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Spec.Arch == "" || cfg.Spec.InDim <= 0 || cfg.Spec.Classes <= 0 {
		return nil, fmt.Errorf("dist: incomplete TrainSpec %+v", cfg.Spec)
	}
	if cfg.Spec.Epochs <= 0 {
		cfg.Spec.Epochs = 2
	}
	if cfg.Spec.BatchSize <= 0 {
		cfg.Spec.BatchSize = 16
	}
	if cfg.Spec.LR <= 0 {
		cfg.Spec.LR = 0.1
	}
	if cfg.Spec.QuantBits <= 0 {
		cfg.Spec.QuantBits = 16
	}
	if cfg.AggregateK <= 0 {
		cfg.AggregateK = 4
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 2 * cfg.AggregateK
	}
	if cfg.Controller == nil {
		cfg.Controller = fl.NoOpController{}
	}
	rng := newRand(cfg.Seed)
	global, err := nn.NewModel(cfg.Spec.Arch, cfg.Spec.InDim, cfg.Spec.Classes, rng)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		global:  global,
		clients: make(map[int]*clientInfo),
	}, nil
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/task", s.handleTask)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/v1/status", s.handleStatus)
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	id := s.nextClientID
	s.nextClientID++
	s.clients[id] = &clientInfo{
		name: req.Name,
		dev: &device.Client{
			ID: id,
			Compute: trace.ComputeProfile{
				GFLOPS:         orDefault(req.GFLOPS, 10),
				MemoryMB:       orDefault(req.MemoryMB, 2000),
				EnergyCapacity: 2,
			},
		},
		taskRound: -1,
	}
	spec := s.cfg.Spec
	s.mu.Unlock()
	writeJSON(w, RegisterResponse{ClientID: id, Spec: spec})
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	var req TaskRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, ok := s.clients[req.ClientID]
	if !ok {
		http.Error(w, "dist: unknown client", http.StatusNotFound)
		return
	}
	if ci.taskRound == s.round {
		// Already holds this round's task; re-issue idempotently.
	} else if s.outstanding >= s.cfg.MaxOutstanding {
		w.WriteHeader(http.StatusNoContent)
		return
	} else {
		res := req.Resources.toResources()
		ci.tech = s.cfg.Controller.Decide(s.round, ci.dev, res, req.Resources.DeadlineDiff)
		ci.taskRound = s.round
		s.outstanding++
	}
	blob, err := s.global.MarshalBinary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, TaskResponse{
		Round:           s.round,
		Technique:       ci.tech.String(),
		Model:           blob,
		DeadlineSeconds: s.cfg.DeadlineSeconds,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if !decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, ok := s.clients[req.ClientID]
	if !ok {
		http.Error(w, "dist: unknown client", http.StatusNotFound)
		return
	}
	if req.Round != s.round || ci.taskRound != s.round {
		// Stale update from a previous round: reject so the client refreshes.
		http.Error(w, "dist: stale round", http.StatusConflict)
		return
	}
	delta, err := opt.DecompressUpdate(req.Delta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(delta) != s.global.NumParams() {
		http.Error(w, "dist: delta size mismatch", http.StatusBadRequest)
		return
	}
	for _, x := range delta {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// A diverged or malicious client must not poison the global
			// model; the same guard the simulator's aggregator applies.
			http.Error(w, "dist: non-finite update rejected", http.StatusBadRequest)
			return
		}
	}
	ci.taskRound = -1
	s.outstanding--
	s.updatesSeen++
	weight := float64(req.Samples)
	if weight <= 0 {
		weight = 1
	}
	s.deltas = append(s.deltas, delta)
	s.weights = append(s.weights, weight)

	// Feed the controller: a returned update is a successful participation.
	s.cfg.Controller.Feedback(s.round, ci.dev, ci.tech,
		device.Outcome{Completed: true, Cost: device.Cost{TotalSeconds: req.TrainSecs}},
		req.AccImprove)

	if len(s.deltas) >= s.cfg.AggregateK {
		if err := s.aggregateLocked(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
}

// aggregateLocked applies the buffered weighted deltas and advances the
// round. Clients still holding tasks for the old round will get a 409 on
// upload and re-fetch — the deployment analog of a deadline dropout, which
// is also reported to the controller.
func (s *Server) aggregateLocked() error {
	var totalW float64
	for _, w := range s.weights {
		totalW += w
	}
	if totalW > 0 {
		// Accumulate the weighted mean straight into the global flat buffer
		// (Parameters is a zero-copy view).
		for i := range s.weights {
			s.weights[i] /= totalW
		}
		tensor.AddWeighted(s.global.Parameters(), s.weights, s.deltas)
	}
	s.deltas = s.deltas[:0]
	s.weights = s.weights[:0]
	s.round++
	s.outstanding = 0
	for _, ci := range s.clients {
		if ci.taskRound >= 0 && ci.taskRound < s.round {
			// The round moved on without this client: count it as a
			// deadline miss so FLOAT learns from it.
			s.cfg.Controller.Feedback(ci.taskRound, ci.dev, ci.tech,
				device.Outcome{Completed: false, Reason: device.DropDeadline, DeadlineDiff: 0.5}, 0)
			ci.taskRound = -1
		}
	}
	if len(s.cfg.Holdout) > 0 {
		s.holdoutAcc, _ = s.global.Evaluate(s.cfg.Holdout)
	}
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := StatusResponse{
		Round:       s.round,
		Registered:  len(s.clients),
		HoldoutAcc:  s.holdoutAcc,
		UpdatesSeen: s.updatesSeen,
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// Round returns the current aggregation round.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// HoldoutAccuracy returns the last post-aggregation holdout accuracy.
func (s *Server) HoldoutAccuracy() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holdoutAcc
}

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "dist: POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("dist: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}

func orDefault(x, def float64) float64 {
	if x <= 0 {
		return def
	}
	return x
}
