package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"

	"floatfl/internal/checkpoint"
	"floatfl/internal/core"
	"floatfl/internal/rl"
)

func postDrain(t *testing.T, url string, off bool) DrainResponse {
	t.Helper()
	body, _ := json.Marshal(DrainRequest{Off: off})
	resp, err := http.Post(url+"/v1/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getSnapshot(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/snapshot: %s", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDrainStopsNewTasks pins the drain protocol: while draining the
// server hands out no new tasks, and turning drain off re-opens hand-out.
func TestDrainStopsNewTasks(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 2)
	c := registeredClient(t, hs, fed, 0)
	ctx := context.Background()

	dr := postDrain(t, hs.URL, false)
	if !dr.Draining {
		t.Fatal("drain did not engage")
	}
	if !srv.Draining() {
		t.Fatal("server does not report draining")
	}
	if ok, err := c.Step(ctx, 0); err != nil || ok {
		t.Fatalf("Step while draining: ok=%v err=%v, want a declined task", ok, err)
	}
	var st StatusResponse
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("status does not report draining")
	}

	if dr := postDrain(t, hs.URL, true); dr.Draining {
		t.Fatal("drain did not disengage")
	}
	if ok, err := c.Step(ctx, 0); err != nil || !ok {
		t.Fatalf("Step after drain off: ok=%v err=%v, want participation", ok, err)
	}
}

// TestSnapshotRestore drives a server through an aggregation, snapshots it
// over HTTP, restores into a freshly built server, and requires the
// restored server to re-snapshot byte-identically — round, global model,
// client registry, controller state, and metrics all carried over.
func TestSnapshotRestore(t *testing.T) {
	mkCtrl := func() *core.Float {
		return core.New(core.Config{
			Agent:           rl.Config{Seed: 17, TotalRounds: 50},
			BatchSize:       16,
			Epochs:          2,
			ClientsPerRound: 2,
		})
	}
	srv, hs, fed := testServer(t, mkCtrl(), 2)
	ctx := context.Background()
	c0 := registeredClient(t, hs, fed, 0)
	c1 := registeredClient(t, hs, fed, 1)
	for _, c := range []*Client{c0, c1} {
		if ok, err := c.Step(ctx, 0); err != nil || !ok {
			t.Fatalf("Step: ok=%v err=%v", ok, err)
		}
	}
	if srv.Round() != 1 {
		t.Fatalf("round %d after 2 updates with k=2, want 1", srv.Round())
	}

	postDrain(t, hs.URL, false)
	blob := getSnapshot(t, hs.URL)

	// A fresh server with an equivalent config; its own model init and
	// zeroed counters must all be overwritten by the restore.
	srv2, hs2, _ := testServer(t, mkCtrl(), 2)
	if err := srv2.RestoreSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	if srv2.Round() != srv.Round() {
		t.Fatalf("restored round %d, want %d", srv2.Round(), srv.Round())
	}
	if srv2.HoldoutAccuracy() != srv.HoldoutAccuracy() {
		t.Fatalf("restored holdout %v, want %v", srv2.HoldoutAccuracy(), srv.HoldoutAccuracy())
	}
	blob2 := getSnapshot(t, hs2.URL)
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("restore → snapshot is not a fixed point (%dB vs %dB)", len(blob), len(blob2))
	}

	// Registration stays idempotent across the restore: the same client
	// name must resolve to its old identity, not a duplicate.
	var reg RegisterResponse
	body, _ := json.Marshal(RegisterRequest{Name: c0.Name, GFLOPS: 15, MemoryMB: 3000})
	resp, err := http.Post(hs2.URL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reg.ClientID != c0.ID() {
		t.Fatalf("re-register after restore gave ID %d, want %d", reg.ClientID, c0.ID())
	}
}

// TestSnapshotRestoreRejectsBadBlob pins clean failure: corruption and
// truncation surface as the typed checkpoint errors and leave the target
// server untouched.
func TestSnapshotRestoreRejectsBadBlob(t *testing.T) {
	srv, hs, _ := testServer(t, nil, 2)
	blob := getSnapshot(t, hs.URL)

	srv2, hs2, _ := testServer(t, nil, 2)
	before := getSnapshot(t, hs2.URL)

	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x41
	if err := srv2.RestoreSnapshot(corrupt); !errors.Is(err, checkpoint.ErrChecksum) {
		t.Fatalf("corrupt blob: got %v, want ErrChecksum", err)
	}
	if err := srv2.RestoreSnapshot(blob[:len(blob)-3]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Fatalf("truncated blob: got %v, want ErrTruncated", err)
	}
	wrongKind, err := checkpoint.EncodeBytes("engine-sync", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var fe *checkpoint.FormatError
	if err := srv2.RestoreSnapshot(wrongKind); !errors.As(err, &fe) {
		t.Fatalf("wrong kind: got %v, want FormatError", err)
	}
	if after := getSnapshot(t, hs2.URL); !bytes.Equal(before, after) {
		t.Fatal("failed restores mutated the server")
	}
	_ = srv
}
