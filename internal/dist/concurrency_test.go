package dist

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentClients drives the aggregator with truly concurrent client
// goroutines; run under -race this checks the server's locking.
func TestConcurrentClients(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 4)
	const n = 6
	const rounds = 4

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(hs.URL, fmt.Sprintf("conc-%d", i), fed.Train[i], fed.LocalTest[i], int64(200+i))
			if err := c.Register(context.Background(), 15, 3000); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				if _, err := c.Step(context.Background(), r); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Round() == 0 {
		t.Fatal("no aggregation happened under concurrent load")
	}
}

// TestConcurrentRegistrations checks ID assignment races.
func TestConcurrentRegistrations(t *testing.T) {
	_, hs, fed := testServer(t, nil, 4)
	const n = 16
	ids := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(hs.URL, fmt.Sprintf("reg-%d", i), fed.Train[i%8], fed.LocalTest[i%8], int64(i))
			if err := c.Register(context.Background(), 10, 2000); err != nil {
				t.Error(err)
				return
			}
			ids <- c.ID()
		}(i)
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate client ID %d under concurrent registration", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("registered %d unique IDs, want %d", len(seen), n)
	}
}

// TestConcurrentRegistrationsSameName: concurrent retries of one logical
// client must collapse onto a single identity.
func TestConcurrentRegistrationsSameName(t *testing.T) {
	_, hs, fed := testServer(t, nil, 4)
	const n = 8
	ids := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(hs.URL, "same-name", fed.Train[i%8], fed.LocalTest[i%8], int64(i))
			if err := c.Register(context.Background(), 10, 2000); err != nil {
				t.Error(err)
				return
			}
			ids <- c.ID()
		}(i)
	}
	wg.Wait()
	close(ids)
	first := -1
	for id := range ids {
		if first == -1 {
			first = id
		} else if id != first {
			t.Fatalf("same-name registrations produced IDs %d and %d", first, id)
		}
	}
}
