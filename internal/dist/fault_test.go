package dist

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func stubServer(t *testing.T) (*httptest.Server, *int64) {
	t.Helper()
	var hits int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"round":7,"registered":3}`)
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func chaosFaultConfig(seed int64) FaultConfig {
	return FaultConfig{
		Seed:             seed,
		DropRequestProb:  0.12,
		DropResponseProb: 0.08,
		Err500Prob:       0.08,
		Err503Prob:       0.05,
		TruncateProb:     0.05,
		LatencyProb:      0.15,
		Latency:          2 * time.Second,
	}
}

// TestFaultScheduleDeterministic: the same seed must reproduce the same
// fault schedule, request for request, regardless of wall time.
func TestFaultScheduleDeterministic(t *testing.T) {
	hs, _ := stubServer(t)
	// Latency timers only resolve via Advance; with LatencyProb > 0 a GET
	// would block. Use a zero-latency copy for the schedule comparison and
	// keep the latency draw in the stream (plan still consumes it).
	runNoWait := func(seed int64) []string {
		cfg := chaosFaultConfig(seed)
		cfg.Latency = 0 // draw still happens; nothing blocks
		inj := NewFaultInjector(cfg, nil, NewFakeClock(time.Unix(0, 0)))
		client := &http.Client{Transport: inj}
		for i := 0; i < 60; i++ {
			resp, err := client.Get(hs.URL)
			if err == nil {
				drainClose(resp.Body)
			}
		}
		return inj.History()
	}
	a, b := runNoWait(42), runNoWait(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 60 {
		t.Fatalf("history has %d entries, want 60", len(a))
	}
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	if len(kinds) < 3 {
		t.Fatalf("seed 42 exercised only %v; want a mixed schedule", kinds)
	}
	c := runNoWait(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 60-request schedules")
	}
}

func TestFaultKindsBehave(t *testing.T) {
	hs, hits := stubServer(t)

	// Dropped request: transport error, server never touched.
	inj := NewFaultInjector(FaultConfig{Seed: 1, DropRequestProb: 1}, nil, nil)
	client := &http.Client{Transport: inj}
	before := atomic.LoadInt64(hits)
	_, err := client.Get(hs.URL)
	if !errors.Is(err, ErrFaultDroppedRequest) {
		t.Fatalf("dropped request error = %v", err)
	}
	if atomic.LoadInt64(hits) != before {
		t.Fatal("dropped request reached the server")
	}

	// Dropped response: transport error, but the server DID process it —
	// the case that makes retries dangerous without idempotent handlers.
	inj = NewFaultInjector(FaultConfig{Seed: 1, DropResponseProb: 1}, nil, nil)
	client = &http.Client{Transport: inj}
	before = atomic.LoadInt64(hits)
	_, err = client.Get(hs.URL)
	if !errors.Is(err, ErrFaultDroppedResponse) {
		t.Fatalf("dropped response error = %v", err)
	}
	if atomic.LoadInt64(hits) != before+1 {
		t.Fatal("dropped-response request did not reach the server")
	}

	// Synthesized 5xx: no server contact, retryable status.
	inj = NewFaultInjector(FaultConfig{Seed: 1, Err503Prob: 1}, nil, nil)
	client = &http.Client{Transport: inj}
	before = atomic.LoadInt64(hits)
	resp, err := client.Get(hs.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected 503: %v %v", resp, err)
	}
	drainClose(resp.Body)
	if atomic.LoadInt64(hits) != before {
		t.Fatal("injected 503 reached the server")
	}

	// Truncated body: half the payload arrives.
	inj = NewFaultInjector(FaultConfig{Seed: 1, TruncateProb: 1}, nil, nil)
	client = &http.Client{Transport: inj}
	resp, err = client.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := len(`{"round":7,"registered":3}`)
	if len(body) >= full {
		t.Fatalf("body not truncated: %d bytes %q", len(body), body)
	}

	st := inj.Stats()
	if st.Requests != 1 || st.Truncated != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestFaultLatencyWaitsOnClock: injected latency resolves via the fake
// clock, not wall time.
func TestFaultLatencyWaitsOnClock(t *testing.T) {
	hs, _ := stubServer(t)
	clk := NewFakeClock(time.Unix(0, 0))
	inj := NewFaultInjector(FaultConfig{Seed: 1, LatencyProb: 1, Latency: 5 * time.Second}, nil, clk)
	client := &http.Client{Transport: inj}

	done := make(chan error, 1)
	go func() {
		resp, err := client.Get(hs.URL)
		if err == nil {
			drainClose(resp.Body)
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request completed without advancing the clock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Advance until the pending timer is consumed (the goroutine may not
	// have registered it yet on the first try).
	for {
		clk.Advance(5 * time.Second)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestClientRetriesTransientFaults: the client retries 5xx and transport
// errors and succeeds once the fault clears; 204 is returned immediately.
func TestClientRetriesTransientFaults(t *testing.T) {
	var calls int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt64(&calls, 1)
		if n <= 2 { // two failures, then success
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"round":3,"registered":1}`)
	}))
	t.Cleanup(hs.Close)

	c := NewClient(hs.URL, "retry-test", nil, nil, 7)
	c.Sleep = func(ctx context.Context, d time.Duration) error { return nil } // no wall time in tests
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 3 || atomic.LoadInt64(&calls) != 3 {
		t.Fatalf("retry path wrong: %+v after %d calls", st, calls)
	}

	// Non-retryable protocol outcome: 204 must come back on first attempt.
	hs204 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&calls, 100)
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(hs204.Close)
	c2 := NewClient(hs204.URL, "retry-204", nil, nil, 8)
	c2.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	atomic.StoreInt64(&calls, 0)
	status, err := c2.postStatus(context.Background(), "/v1/task", TaskRequest{}, &TaskResponse{})
	if err != nil || status != http.StatusNoContent {
		t.Fatalf("204 path: %d %v", status, err)
	}
	if atomic.LoadInt64(&calls) != 100 {
		t.Fatalf("204 was retried: calls=%d", calls)
	}

	// Retries exhaust into a terminal error.
	hs500 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(hs500.Close)
	c3 := NewClient(hs500.URL, "retry-dead", nil, nil, 9)
	c3.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	c3.Retry = RetryPolicy{MaxAttempts: 3}
	if _, err := c3.Status(context.Background()); err == nil {
		t.Fatal("exhausted retries did not error")
	}
}
