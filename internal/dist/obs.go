package dist

import (
	"floatfl/internal/device"
	"floatfl/internal/obs"
)

// numDropReasons sizes per-reason counter arrays (device.DropDeadline is
// the last enum value).
const numDropReasons = int(device.DropDeadline) + 1

// serverObs holds the aggregator's registry-backed counters and gauges.
// These ARE the server's operational state counters — /v1/status reads
// them back out, so /v1/status and /v1/metrics agree by construction
// (satellite of ISSUE 5: no more ad-hoc int fields shadowing the
// registry). The server always constructs a registry (private if the
// config supplies none) because status reporting needs live handles.
type serverObs struct {
	tracer *obs.Tracer

	updates       *obs.Counter
	leaseGrants   *obs.Counter
	leaseExpiries *obs.Counter
	partialAggs   *obs.Counter
	rounds        *obs.Counter
	registrations *obs.Counter
	timerFires    *obs.Counter
	drops         [numDropReasons]*obs.Counter

	round       *obs.Gauge
	outstanding *obs.Gauge
	buffered    *obs.Gauge
	registered  *obs.Gauge
	holdoutAcc  *obs.Gauge
}

func newServerObs(reg *obs.Registry, tracer *obs.Tracer) *serverObs {
	so := &serverObs{
		tracer:        tracer,
		updates:       reg.Counter("dist_updates_total"),
		leaseGrants:   reg.Counter("dist_lease_grants_total"),
		leaseExpiries: reg.Counter("dist_lease_expiries_total"),
		partialAggs:   reg.Counter("dist_partial_aggregations_total"),
		rounds:        reg.Counter("dist_rounds_total"),
		registrations: reg.Counter("dist_registrations_total"),
		timerFires:    reg.Counter("dist_round_timer_fires_total"),
		round:         reg.Gauge("dist_round"),
		outstanding:   reg.Gauge("dist_outstanding"),
		buffered:      reg.Gauge("dist_buffered_updates"),
		registered:    reg.Gauge("dist_registered_clients"),
		holdoutAcc:    reg.Gauge("dist_holdout_acc"),
	}
	for r := device.DropNone; r <= device.DropDeadline; r++ {
		so.drops[int(r)] = reg.Counter(`dist_drops_total{reason="` + r.String() + `"}`)
	}
	return so
}

// dropReasonCount reads one per-reason drop counter.
func (so *serverObs) dropReasonCount(r device.DropReason) int {
	if i := int(r); i >= 0 && i < numDropReasons {
		return int(so.drops[i].Value())
	}
	return 0
}

// eventLocked emits one server trace span, timestamped in seconds since
// server start on the injected clock (never wall time directly). Caller
// holds s.mu, which makes emission order deterministic for a fixed fault
// and clock schedule.
func (s *Server) eventLocked(kind string, round, client int, note string) {
	if s.obs.tracer == nil {
		return
	}
	s.obs.tracer.Emit(obs.Span{
		T:      s.clock.Now().Sub(s.start).Seconds(),
		Kind:   kind,
		Round:  round,
		Client: client,
		Note:   note,
	})
}

// syncGaugesLocked refreshes the live-state gauges after any mutation of
// round/outstanding/buffer/client-set. Caller holds s.mu.
func (s *Server) syncGaugesLocked() {
	s.obs.round.Set(float64(s.round))
	s.obs.outstanding.Set(float64(s.outstanding))
	s.obs.buffered.Set(float64(len(s.deltas)))
	s.obs.registered.Set(float64(len(s.clients)))
}

// Instrument registers the client runtime's retry counters on reg,
// shared across clients when they share a registry. Must be called
// before the client starts issuing requests.
func (c *Client) Instrument(reg *obs.Registry) {
	c.obsRetryTransport = reg.Counter(`dist_client_retries_total{cause="transport"}`)
	c.obsRetry5xx = reg.Counter(`dist_client_retries_total{cause="status5xx"}`)
	c.obsRetryDecode = reg.Counter(`dist_client_retries_total{cause="decode"}`)
	c.obsRetryExhausted = reg.Counter("dist_client_retries_exhausted_total")
}

// Instrument registers per-kind fault counters on reg. Must be called
// before the injector serves traffic.
func (f *FaultInjector) Instrument(reg *obs.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := faultNone; k <= faultTruncate; k++ {
		f.obsKinds[int(k)] = reg.Counter(`dist_fault_injections_total{kind="` + faultKindNames[k] + `"}`)
	}
	f.obsDelays = reg.Counter("dist_fault_delays_total")
}
