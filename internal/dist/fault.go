package dist

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"floatfl/internal/obs"
)

// Sentinel errors the FaultInjector returns, so tests can distinguish a
// request that never reached the server from a response lost on the way
// back (the server-side effects differ: a dropped response was processed).
var (
	ErrFaultDroppedRequest  = errors.New("dist: fault injected: request dropped")
	ErrFaultDroppedResponse = errors.New("dist: fault injected: response dropped")
)

// FaultConfig is the per-request fault distribution of a FaultInjector.
// Exactly one fault kind is drawn per request from the cumulative
// probabilities (their sum must be ≤ 1; the remainder passes through),
// plus an independent latency draw. All randomness comes from the single
// Seed, so the schedule of faults is a pure function of (Seed, request
// ordinal) — two injectors with the same seed produce identical
// schedules regardless of wall time.
type FaultConfig struct {
	Seed int64
	// DropRequestProb: the request never reaches the server (transport
	// error, no server-side effect).
	DropRequestProb float64
	// DropResponseProb: the server fully processes the request but the
	// response is lost (transport error, server-side effect applied).
	DropResponseProb float64
	// Err500Prob / Err503Prob: a synthesized 5xx without contacting the
	// server.
	Err500Prob float64
	Err503Prob float64
	// TruncateProb: the response arrives with its body cut in half
	// (surfaces client-side as a decode failure on a 200).
	TruncateProb float64
	// LatencyProb injects Latency before the request proceeds, waited out
	// on Clock (a FakeClock makes injected latency free and
	// deterministic).
	LatencyProb float64
	Latency     time.Duration
}

// FaultStats counts what the injector actually did.
type FaultStats struct {
	Requests         int
	DroppedRequests  int
	DroppedResponses int
	Errors5xx        int
	Truncated        int
	Delayed          int
	Passed           int
}

type faultKind int

const (
	faultNone faultKind = iota
	faultDropRequest
	faultDropResponse
	faultErr500
	faultErr503
	faultTruncate
)

var faultKindNames = map[faultKind]string{
	faultNone:         "pass",
	faultDropRequest:  "drop-request",
	faultDropResponse: "drop-response",
	faultErr500:       "err-500",
	faultErr503:       "err-503",
	faultTruncate:     "truncate",
}

// FaultInjector is a deterministic, seeded http.RoundTripper that wraps a
// real transport with drop/error/truncate/latency faults. Give each
// simulated client its own injector (own seed): the fault schedule is
// then reproducible per client even when clients interleave freely.
type FaultInjector struct {
	cfg   FaultConfig
	next  http.RoundTripper
	clock Clock

	mu      sync.Mutex
	rng     *rand.Rand
	stats   FaultStats
	history []string

	// Per-kind injection counters (nil until Instrument; see dist/obs.go).
	obsKinds  [int(faultTruncate) + 1]*obs.Counter
	obsDelays *obs.Counter
}

// NewFaultInjector wraps next (nil: http.DefaultTransport) with the fault
// distribution in cfg; clock (nil: real clock) waits out injected latency.
func NewFaultInjector(cfg FaultConfig, next http.RoundTripper, clock Clock) *FaultInjector {
	if next == nil {
		next = http.DefaultTransport
	}
	if clock == nil {
		clock = RealClock()
	}
	return &FaultInjector{cfg: cfg, next: next, clock: clock, rng: newRand(cfg.Seed)}
}

// Stats returns a snapshot of the injector's counters.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// History returns the per-request fault schedule ("pass", "drop-request",
// ...; a "+delay" suffix marks injected latency) in request order —
// identical across runs with the same seed.
func (f *FaultInjector) History() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.history...)
}

// plan draws this request's fault: exactly two RNG consumptions per
// request (kind, latency) keep the schedule aligned with the ordinal.
func (f *FaultInjector) plan() (faultKind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Requests++
	u := f.rng.Float64()
	kind := faultNone
	for _, c := range []struct {
		p float64
		k faultKind
	}{
		{f.cfg.DropRequestProb, faultDropRequest},
		{f.cfg.DropResponseProb, faultDropResponse},
		{f.cfg.Err500Prob, faultErr500},
		{f.cfg.Err503Prob, faultErr503},
		{f.cfg.TruncateProb, faultTruncate},
	} {
		if u < c.p {
			kind = c.k
			break
		}
		u -= c.p
	}
	delayed := f.rng.Float64() < f.cfg.LatencyProb && f.cfg.Latency > 0
	entry := faultKindNames[kind]
	if delayed {
		entry += "+delay"
		f.stats.Delayed++
		f.obsDelays.Inc()
	}
	f.obsKinds[int(kind)].Inc()
	f.history = append(f.history, entry)
	switch kind {
	case faultDropRequest:
		f.stats.DroppedRequests++
	case faultDropResponse:
		f.stats.DroppedResponses++
	case faultErr500, faultErr503:
		f.stats.Errors5xx++
	case faultTruncate:
		f.stats.Truncated++
	default:
		f.stats.Passed++
	}
	return kind, delayed
}

// RoundTrip implements http.RoundTripper.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, delayed := f.plan()
	if delayed {
		fired := make(chan struct{})
		t := f.clock.AfterFunc(f.cfg.Latency, func() { close(fired) })
		select {
		case <-fired:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	switch kind {
	case faultDropRequest:
		return nil, ErrFaultDroppedRequest
	case faultErr500:
		return syntheticResponse(req, http.StatusInternalServerError), nil
	case faultErr503:
		return syntheticResponse(req, http.StatusServiceUnavailable), nil
	case faultDropResponse:
		resp, err := f.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		drainClose(resp.Body)
		return nil, ErrFaultDroppedResponse
	case faultTruncate:
		resp, err := f.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		body = body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return f.next.RoundTrip(req)
	}
}

func syntheticResponse(req *http.Request, code int) *http.Response {
	return &http.Response{
		Status:        http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          io.NopCloser(strings.NewReader("injected fault")),
		ContentLength: int64(len("injected fault")),
		Request:       req,
	}
}
