package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"floatfl/internal/data"
	"floatfl/internal/obs"
)

// fakeClockSleeper returns a Client.Sleep that waits on the fake clock,
// so retry backoff costs no wall time and stays under test control.
func fakeClockSleeper(clk *FakeClock) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		fired := make(chan struct{})
		t := clk.AfterFunc(d, func() { close(fired) })
		select {
		case <-fired:
			return nil
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// assertNoGoroutineLeak polls until the goroutine count returns to the
// baseline (plus slack for runtime helpers); hand-rolled, stdlib only.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d at start, %d after chaos run\n%s", base, n, buf[:m])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runChaos drives numClients flaky clients — each with its own seeded
// fault injector — against a real aggregator until it reaches
// targetRounds. All time (leases, round timer, injected latency, retry
// backoff) flows through one fake clock that a driver goroutine advances,
// so expiry is never a wall-clock race. Returns only when training
// converged, with everything shut down and the goroutine baseline
// restored.
func runChaos(t *testing.T, numClients, targetRounds int, wallTimeout time.Duration) {
	t.Helper()
	fed, err := data.Generate("femnist", data.GenerateConfig{
		Clients: numClients, Alpha: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	holdout := fed.GlobalTest
	if len(holdout) > 200 {
		holdout = holdout[:200]
	}

	base := runtime.NumGoroutine()

	clk := NewFakeClock(time.Unix(0, 0))
	srv, err := NewServer(ServerConfig{
		Spec: TrainSpec{
			Arch: "resnet18", InDim: fed.Profile.Dim, Classes: fed.Profile.Classes,
			Epochs: 2, BatchSize: 16, LR: 0.1,
		},
		AggregateK:     numClients / 2,
		MaxOutstanding: numClients,
		LeaseSeconds:   30,
		RoundSeconds:   60,
		MinUpdates:     1,
		Clock:          clk,
		Seed:           6,
		Holdout:        holdout,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), wallTimeout)
	defer cancel()

	// Driver: virtual time marches while clients run, expiring leases,
	// firing the round timer, and resolving injected latency and backoff.
	driverDone := make(chan struct{})
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for {
			select {
			case <-driverDone:
				return
			default:
				// ~200 virtual ms per real ms: fast enough that a 30s
				// lease expires in ~150ms of wall time, slow enough that
				// an honest in-flight training step finishes well inside
				// its lease even under -race.
				clk.Advance(200 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	injectors := make([]*FaultInjector, numClients)
	transports := make([]*http.Transport, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := &http.Transport{}
			inj := NewFaultInjector(chaosFaultConfig(int64(1000+i)), tr, clk)
			// Client retry and fault-injection counters share the server's
			// registry, so the /v1/metrics scrape below sees the whole run.
			inj.Instrument(srv.Metrics())
			injectors[i], transports[i] = inj, tr
			c := NewClient(hs.URL, fmt.Sprintf("flaky-%d", i),
				fed.Train[i], fed.LocalTest[i], int64(300+i))
			c.Instrument(srv.Metrics())
			sleep := fakeClockSleeper(clk)
			c.HTTPClient = &http.Client{Transport: inj, Timeout: defaultHTTPTimeout}
			c.Sleep = sleep
			c.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
			// Registration itself runs through the injector; the server's
			// per-name idempotency makes blind re-registration safe.
			for ctx.Err() == nil {
				if err := c.Register(ctx, 10+float64(i%4)*5, 3000); err == nil {
					break
				}
				_ = sleep(ctx, time.Second)
			}
			for ctx.Err() == nil && srv.Round() < targetRounds {
				ok, err := c.Step(ctx, srv.Round())
				if err != nil {
					// Retries exhausted on injected faults; regroup and
					// try again next virtual second.
					_ = sleep(ctx, time.Second)
					continue
				}
				if !ok {
					// No slot (204) or stale round (409): back off briefly
					// instead of hammering the server.
					_ = sleep(ctx, time.Second)
				}
			}
		}(i)
	}
	wg.Wait()
	cancel()
	close(driverDone)
	driverWG.Wait()
	// Scrape the live endpoints while the HTTP server is still up:
	// /v1/status must be a pure projection of the /v1/metrics registry.
	assertStatusMetricsAgree(t, hs.URL)
	srv.Close()
	for _, tr := range transports {
		if tr != nil {
			tr.CloseIdleConnections()
		}
	}
	hs.Close()

	if srv.Round() < targetRounds {
		t.Fatalf("chaos run deadlocked: reached round %d of %d within %v",
			srv.Round(), targetRounds, wallTimeout)
	}
	if acc := srv.HoldoutAccuracy(); acc <= 0 {
		t.Fatalf("holdout accuracy %v after %d rounds under faults", acc, srv.Round())
	}
	var injected int
	for _, inj := range injectors {
		if inj == nil {
			continue
		}
		st := inj.Stats()
		injected += st.DroppedRequests + st.DroppedResponses + st.Errors5xx + st.Truncated
	}
	if injected == 0 {
		t.Fatal("chaos run injected no faults; the test proved nothing")
	}
	t.Logf("chaos: %d rounds, holdout %.3f, %d faults injected, %d lease expiries, %d partial aggregations",
		srv.Round(), srv.HoldoutAccuracy(), injected, srv.LeaseExpiries(), srv.PartialAggregations())

	assertNoGoroutineLeak(t, base)
}

// assertStatusMetricsAgree scrapes /v1/status and /v1/metrics?format=json
// from a live server and checks that every counter /v1/status reports
// matches its registry-backed source of truth. Both handlers read the
// same obs handles, so any disagreement means a counter is being
// shadowed by ad-hoc state again.
func assertStatusMetricsAgree(t *testing.T, baseURL string) {
	t.Helper()
	getJSON := func(url string, out interface{}) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer drainClose(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	var status StatusResponse
	getJSON(baseURL+"/v1/status", &status)
	var snap obs.Snapshot
	getJSON(baseURL+"/v1/metrics?format=json", &snap)

	counter := func(name string) int {
		for _, c := range snap.Counters {
			if c.Name == name {
				return int(c.Value)
			}
		}
		return 0
	}
	for _, check := range []struct {
		field  string
		status int
		metric int
	}{
		{"updates_seen", status.UpdatesSeen, counter("dist_updates_total")},
		{"lease_expiries", status.LeaseExpiries, counter("dist_lease_expiries_total")},
		{"partial_aggregations", status.PartialAggregations, counter("dist_partial_aggregations_total")},
	} {
		if check.status != check.metric {
			t.Errorf("/v1/status %s=%d disagrees with /v1/metrics %d",
				check.field, check.status, check.metric)
		}
	}
	statusDrops := 0
	for _, n := range status.Drops {
		statusDrops += n
	}
	metricDrops := 0
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, `dist_drops_total{`) {
			metricDrops += int(c.Value)
		}
	}
	if statusDrops != metricDrops {
		t.Errorf("/v1/status drops sum %d disagrees with /v1/metrics dist_drops_total sum %d",
			statusDrops, metricDrops)
	}
	if counter("dist_rounds_total") != status.Round {
		t.Errorf("/v1/status round=%d disagrees with dist_rounds_total=%d",
			status.Round, counter("dist_rounds_total"))
	}
}

// TestChaosFlakyClientsConverge: N concurrent clients behind seeded fault
// injectors (dropped requests/responses, 5xx, truncated bodies, latency)
// against a real HTTP aggregator must still reach the target round count
// with nonzero holdout accuracy, never deadlock, and leak no goroutines.
// Run under -race in CI.
func TestChaosFlakyClientsConverge(t *testing.T) {
	runChaos(t, 6, 5, 90*time.Second)
}

// TestChaosSoak is the CI soak: more clients, more rounds, bounded wall
// time. Gated behind FLOAT_DIST_SOAK so local `go test ./...` stays fast.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("FLOAT_DIST_SOAK") == "" {
		t.Skip("set FLOAT_DIST_SOAK=1 to run the chaos soak")
	}
	runChaos(t, 12, 8, 4*time.Minute)
}
