package dist

import (
	"time"

	"floatfl/internal/device"
)

// Task leases and the round-advance timer: the server's defense against
// clients that fail without a well-formed HTTP response. Every handed-out
// task carries a lease against the injected Clock; an expired lease frees
// its MaxOutstanding slot and reports a deadline dropout to the
// Controller, and a per-round timer aggregates whatever partial buffer
// has accumulated (subject to the MinUpdates floor) so a round always
// makes progress even when every leaseholder vanishes silently.

// grantLeaseLocked (re)arms the lease for a task handed to ci this round.
// Re-issuing to a current holder renews the lease. Caller holds s.mu.
func (s *Server) grantLeaseLocked(id int, ci *clientInfo) {
	s.stopLeaseLocked(ci)
	if s.closed || s.cfg.LeaseSeconds <= 0 {
		return
	}
	seq := ci.leaseSeq
	round := s.round
	d := secondsToDuration(s.cfg.LeaseSeconds)
	ci.leaseExpiry = s.clock.Now().Add(d)
	ci.leaseTimer = s.clock.AfterFunc(d, func() { s.leaseExpired(id, seq, round) })
	s.obs.leaseGrants.Inc()
	s.eventLocked("lease_grant", round, id, "")
}

// stopLeaseLocked invalidates any pending lease timer for ci. Bumping
// leaseSeq also neutralizes a real-clock callback that has already fired
// and is blocked on s.mu. Caller holds s.mu.
func (s *Server) stopLeaseLocked(ci *clientInfo) {
	ci.leaseSeq++
	if ci.leaseTimer != nil {
		ci.leaseTimer.Stop()
		ci.leaseTimer = nil
	}
}

// leaseExpired is the lease-timer callback: the client took a task and
// neither uploaded nor renewed within LeaseSeconds.
func (s *Server) leaseExpired(id int, seq uint64, round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci, ok := s.clients[id]
	if !ok || ci.leaseSeq != seq || ci.taskRound != round || round != s.round {
		// The update arrived, the lease was renewed, or the round already
		// moved on (which reported the dropout itself): nothing to do.
		return
	}
	ci.taskRound = -1
	ci.leaseTimer = nil
	ci.leaseSeq++
	s.outstanding--
	s.obs.leaseExpiries.Inc()
	s.obs.drops[int(device.DropDeadline)].Inc()
	s.eventLocked("lease_expiry", round, id, "")
	s.syncGaugesLocked()
	// A silent death is indistinguishable from a deadline miss; feed it to
	// the controller exactly as the simulator's cost model would.
	s.cfg.Controller.Feedback(round, ci.dev, ci.tech,
		device.Outcome{Completed: false, Reason: device.DropDeadline, DeadlineDiff: 1}, 0)
}

// armRoundTimerLocked starts (or restarts) the round-advance timer for
// the current round. Caller holds s.mu.
func (s *Server) armRoundTimerLocked() {
	if s.roundTimer != nil {
		s.roundTimer.Stop()
		s.roundTimer = nil
	}
	s.roundSeq++
	if s.closed || s.cfg.RoundSeconds <= 0 {
		return
	}
	seq := s.roundSeq
	round := s.round
	s.roundTimer = s.clock.AfterFunc(secondsToDuration(s.cfg.RoundSeconds),
		func() { s.roundTimerFired(seq, round) })
}

// roundTimerFired aggregates a partial buffer when the round has run for
// RoundSeconds without reaching AggregateK. An empty (below-floor) buffer
// re-arms the timer instead: there is nothing to apply, but expired
// leases have already freed their slots, so retrying clients can refill
// the round.
func (s *Server) roundTimerFired(seq uint64, round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq != s.roundSeq || round != s.round {
		return
	}
	s.obs.timerFires.Inc()
	s.eventLocked("round_timer", round, -1, "")
	if len(s.deltas) >= s.minUpdates() {
		s.obs.partialAggs.Inc()
		_ = s.aggregateLocked()
		return
	}
	s.armRoundTimerLocked()
}

func (s *Server) minUpdates() int {
	if s.cfg.MinUpdates > 0 {
		return s.cfg.MinUpdates
	}
	return 1
}

// Close stops the round timer and all outstanding lease timers. The
// handlers keep answering (a closed Server is still a valid aggregator),
// but no further timers are armed.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.roundTimer != nil {
		s.roundTimer.Stop()
		s.roundTimer = nil
	}
	for _, ci := range s.clients {
		s.stopLeaseLocked(ci)
	}
}

func secondsToDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
