package dist

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"floatfl/internal/device"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
)

// recordingController captures every Decide/Feedback the server makes so
// tests can assert on exactly what the Controller was told.
type recordingController struct {
	mu       sync.Mutex
	decides  []device.Resources
	devices  []*device.Client
	outcomes []device.Outcome
}

func (r *recordingController) Name() string { return "recording" }

func (r *recordingController) Decide(round int, c *device.Client, res device.Resources, hf float64) opt.Technique {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decides = append(r.decides, res)
	r.devices = append(r.devices, c)
	return opt.TechNone
}

func (r *recordingController) Feedback(round int, c *device.Client, tech opt.Technique, out device.Outcome, acc float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outcomes = append(r.outcomes, out)
}

func (r *recordingController) lastDecide() device.Resources {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decides[len(r.decides)-1]
}

func (r *recordingController) lastDevice() *device.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.devices[len(r.devices)-1]
}

func (r *recordingController) dropCount(reason device.DropReason) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, out := range r.outcomes {
		if !out.Completed && out.Reason == reason {
			n++
		}
	}
	return n
}

func TestFakeClockFiresInOrder(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var order []int
	clk.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	clk.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	two := clk.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	clk.AfterFunc(1*time.Second, func() { order = append(order, 11) }) // ties: creation order

	clk.Advance(1500 * time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 11 {
		t.Fatalf("after 1.5s fired %v", order)
	}
	if !two.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if two.Stop() {
		t.Fatal("second Stop returned true")
	}
	clk.Advance(10 * time.Second)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("final order %v", order)
	}
	if got := clk.Now(); !got.Equal(time.Unix(0, 0).Add(11500 * time.Millisecond)) {
		t.Fatalf("clock at %v", got)
	}
	// A timer armed inside a callback fires within the same Advance window.
	fired := false
	clk.AfterFunc(time.Second, func() {
		clk.AfterFunc(time.Second, func() { fired = true })
	})
	clk.Advance(5 * time.Second)
	if !fired {
		t.Fatal("timer armed by a callback did not fire inside the window")
	}
}

// TestLeaseExpiryRecoversSeedDeadlock reproduces the seed-state deadlock —
// every MaxOutstanding leaseholder dies silently after taking a task, so
// /v1/task answers 204 forever — and proves the lease machinery recovers:
// expiry frees the slots, reports deadline dropouts to the Controller, and
// lets fresh clients make the round progress. Fully deterministic: every
// expiry is driven by the fake clock.
func TestLeaseExpiryRecoversSeedDeadlock(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	rec := &recordingController{}
	srv, hs, fed := testServerConfig(t, ServerConfig{
		AggregateK:     2,
		MaxOutstanding: 4,
		LeaseSeconds:   30,
		RoundSeconds:   3600, // out of the way: this test isolates leases
		Controller:     rec,
		Clock:          clk,
	})
	ctx := context.Background()

	// Four zombies take every slot and die without another byte.
	for i := 0; i < 4; i++ {
		z := registeredClient(t, hs, fed, i)
		status, err := z.postStatus(ctx, "/v1/task", TaskRequest{ClientID: z.ID(),
			Resources: fullReport()}, &TaskResponse{})
		if err != nil || status != http.StatusOK {
			t.Fatalf("zombie %d task: %d %v", i, status, err)
		}
	}

	// Seed-state behavior: the server is now wedged — no slot ever frees.
	honest := registeredClient(t, hs, fed, 4)
	status, err := honest.postStatus(ctx, "/v1/task", TaskRequest{ClientID: honest.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNoContent {
		t.Fatalf("expected 204 while all slots are pinned, got %d", status)
	}

	// Leases expire: slots free, dropouts are reported.
	clk.Advance(31 * time.Second)
	st, err := honest.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Outstanding != 0 || st.ActiveLeases != 0 {
		t.Fatalf("leases not reclaimed: %+v", st)
	}
	if st.LeaseExpiries != 4 || st.Drops["deadline"] != 4 {
		t.Fatalf("expiry accounting wrong: %+v", st)
	}
	if got := rec.dropCount(device.DropDeadline); got != 4 {
		t.Fatalf("controller got %d deadline dropouts, want 4", got)
	}

	// The round makes progress again: two honest clients finish it.
	honest2 := registeredClient(t, hs, fed, 5)
	for _, c := range []*Client{honest, honest2} {
		ok, err := c.Step(ctx, 0)
		if err != nil || !ok {
			t.Fatalf("honest step after recovery: %v %v", ok, err)
		}
	}
	if srv.Round() != 1 {
		t.Fatalf("round did not advance after recovery: %d", srv.Round())
	}
	if srv.HoldoutAccuracy() <= 0 {
		t.Fatal("holdout accuracy is zero after aggregation")
	}
}

// TestRoundTimerAggregatesPartialBuffer: a round that never reaches
// AggregateK still advances once the round timer fires, as long as the
// MinUpdates floor is met — and an empty buffer re-arms the timer instead
// of advancing a round with nothing to apply.
func TestRoundTimerAggregatesPartialBuffer(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	srv, hs, fed := testServerConfig(t, ServerConfig{
		AggregateK:   4, // never reached: only one client participates
		LeaseSeconds: 3600,
		RoundSeconds: 60,
		MinUpdates:   1,
		Clock:        clk,
	})
	ctx := context.Background()
	c := registeredClient(t, hs, fed, 0)

	// An empty round does not advance on the timer; it re-arms.
	clk.Advance(61 * time.Second)
	if srv.Round() != 0 {
		t.Fatalf("empty round advanced to %d", srv.Round())
	}

	const rounds = 3
	for r := 0; r < rounds; r++ {
		ok, err := c.Step(ctx, r)
		if err != nil || !ok {
			t.Fatalf("step round %d: %v %v", r, ok, err)
		}
		if srv.Round() != r {
			t.Fatalf("round advanced early: at %d during round %d", srv.Round(), r)
		}
		clk.Advance(61 * time.Second)
		if srv.Round() != r+1 {
			t.Fatalf("round timer did not advance round %d (at %d)", r, srv.Round())
		}
	}
	if got := srv.PartialAggregations(); got != rounds {
		t.Fatalf("partial aggregations = %d, want %d", got, rounds)
	}
	if srv.HoldoutAccuracy() <= 0 {
		t.Fatal("holdout accuracy is zero after partial aggregations")
	}
	// The re-armed timer from the empty round must not have double-fired:
	// after the loop the server sits at exactly `rounds`.
	clkStatus, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if clkStatus.PartialAggregations != rounds || clkStatus.Round != rounds {
		t.Fatalf("status inconsistent: %+v", clkStatus)
	}
}

// TestLeaseRenewedOnTaskRefetch: an alive client that re-fetches its task
// renews the lease instead of being reclaimed on the original schedule.
func TestLeaseRenewedOnTaskRefetch(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	srv, hs, fed := testServerConfig(t, ServerConfig{
		AggregateK:   2,
		LeaseSeconds: 30,
		RoundSeconds: 3600,
		Clock:        clk,
	})
	ctx := context.Background()
	c := registeredClient(t, hs, fed, 0)
	take := func() int {
		t.Helper()
		status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
			Resources: fullReport()}, &TaskResponse{})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}
	if take() != http.StatusOK {
		t.Fatal("initial task fetch failed")
	}
	clk.Advance(20 * time.Second)
	if take() != http.StatusOK { // renews the lease at t=20s
		t.Fatal("re-fetch failed")
	}
	clk.Advance(20 * time.Second) // t=40s: original lease would have died at 30s
	if srv.LeaseExpiries() != 0 {
		t.Fatal("renewed lease expired on the original schedule")
	}
	clk.Advance(15 * time.Second) // t=55s: renewal dies at 50s
	if srv.LeaseExpiries() != 1 {
		t.Fatalf("renewed lease did not expire: %d expiries", srv.LeaseExpiries())
	}
}

// TestUpdateAfterLeaseExpiryRejected: an upload that arrives after the
// server reclaimed the lease is a 409, not a double-spend of the slot.
func TestUpdateAfterLeaseExpiryRejected(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	srv, hs, fed := testServerConfig(t, ServerConfig{
		AggregateK:   2,
		LeaseSeconds: 30,
		RoundSeconds: 3600,
		Clock:        clk,
	})
	ctx := context.Background()
	c := registeredClient(t, hs, fed, 0)
	status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatalf("task: %d %v", status, err)
	}
	clk.Advance(31 * time.Second) // lease reclaimed
	blob, err := opt.CompressUpdate(tensor.NewVector(paramCount(t, c)), 16)
	if err != nil {
		t.Fatal(err)
	}
	status, err = c.postStatus(ctx, "/v1/update", UpdateRequest{
		ClientID: c.ID(), Round: 0, Technique: "none", Delta: blob, Samples: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict {
		t.Fatalf("post-expiry upload returned %d, want 409", status)
	}
	if srv.Round() != 0 {
		t.Fatal("expired upload advanced the round")
	}
}
