package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"floatfl/internal/checkpoint"
	"floatfl/internal/device"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/trace"
)

// ServerSnapshotKind frames aggregator snapshots served by /v1/snapshot.
const ServerSnapshotKind = "dist-server"

// serverClientState persists one registration: identity plus the
// capability profile the controller keys its decisions on. Task holds and
// leases are deliberately absent — they die with the process, and the
// idempotent task protocol lets survivors simply re-fetch.
type serverClientState struct {
	ID       int     `json:"id"`
	Name     string  `json:"name,omitempty"`
	GFLOPS   float64 `json:"gflops"`
	MemoryMB float64 `json:"memory_mb"`
	Tech     string  `json:"tech,omitempty"`
}

// serverState is the JSON payload inside a dist-server frame.
type serverState struct {
	Arch         string              `json:"arch"`
	InDim        int                 `json:"in_dim"`
	Classes      int                 `json:"classes"`
	Round        int                 `json:"round"`
	NextClientID int                 `json:"next_client_id"`
	Model        []byte              `json:"model"`
	Clients      []serverClientState `json:"clients,omitempty"`
	Deltas       [][]float64         `json:"deltas,omitempty"`
	Weights      []float64           `json:"weights,omitempty"`
	HoldoutAcc   float64             `json:"holdout_acc"`
	Controller   []byte              `json:"controller,omitempty"`
	Obs          *obs.Snapshot       `json:"obs,omitempty"`
	Timeline     []byte              `json:"timeline,omitempty"`
}

// Snapshot serializes the aggregator's durable state — global model,
// round counter, client registry, buffered updates, controller state, and
// the metrics registry — into a checksummed frame. Callers normally drain
// first so no outstanding work is lost.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := s.global.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st := serverState{
		Arch:         s.cfg.Spec.Arch,
		InDim:        s.cfg.Spec.InDim,
		Classes:      s.cfg.Spec.Classes,
		Round:        s.round,
		NextClientID: s.nextClientID,
		Model:        blob,
		HoldoutAcc:   s.holdoutAcc,
	}
	ids := make([]int, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ci := s.clients[id]
		st.Clients = append(st.Clients, serverClientState{
			ID:       id,
			Name:     ci.name,
			GFLOPS:   ci.dev.Compute.GFLOPS,
			MemoryMB: ci.dev.Compute.MemoryMB,
			Tech:     ci.tech.String(),
		})
	}
	for i, d := range s.deltas {
		st.Deltas = append(st.Deltas, append([]float64(nil), d...))
		st.Weights = append(st.Weights, s.weights[i])
	}
	if cs, ok := s.cfg.Controller.(checkpoint.Stateful); ok {
		b, err := cs.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("dist: snapshot controller: %w", err)
		}
		st.Controller = b
	}
	snap := s.metrics.Snapshot()
	st.Obs = &snap
	if st.Timeline, err = s.timeline.CheckpointState(); err != nil {
		return nil, fmt.Errorf("dist: snapshot timeline: %w", err)
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return checkpoint.EncodeBytes(ServerSnapshotKind, payload)
}

// RestoreSnapshot loads a frame produced by Snapshot into a freshly built
// server. Validation (checksum, kind, spec compatibility) completes before
// any state is touched, so a rejected snapshot leaves the server exactly
// as NewServer built it. Outstanding tasks are not resurrected: surviving
// clients re-fetch and stale uploads get the usual 409.
func (s *Server) RestoreSnapshot(data []byte) error {
	payload, err := checkpoint.DecodeBytes(data, ServerSnapshotKind)
	if err != nil {
		return err
	}
	var st serverState
	if err := json.Unmarshal(payload, &st); err != nil {
		return &checkpoint.FormatError{Reason: fmt.Sprintf("server state: %v", err)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range []struct{ field, got, want string }{
		{"arch", st.Arch, s.cfg.Spec.Arch},
		{"in_dim", fmt.Sprint(st.InDim), fmt.Sprint(s.cfg.Spec.InDim)},
		{"classes", fmt.Sprint(st.Classes), fmt.Sprint(s.cfg.Spec.Classes)},
	} {
		if c.got != c.want {
			return &checkpoint.CompatError{Field: c.field, Got: c.got, Want: c.want}
		}
	}
	if len(st.Deltas) != len(st.Weights) {
		return &checkpoint.FormatError{Reason: "delta/weight count mismatch"}
	}
	techs := make([]opt.Technique, len(st.Clients))
	for i, c := range st.Clients {
		if c.Tech == "" {
			continue
		}
		parsed, err := opt.Parse(c.Tech)
		if err != nil {
			return &checkpoint.FormatError{Reason: fmt.Sprintf("client %d technique: %v", c.ID, err)}
		}
		techs[i] = parsed
	}
	restored := s.global.Clone()
	if err := restored.UnmarshalBinary(st.Model); err != nil {
		return fmt.Errorf("dist: restore model: %w", err)
	}
	if cs, ok := s.cfg.Controller.(checkpoint.Stateful); ok && len(st.Controller) > 0 {
		if err := cs.RestoreCheckpoint(st.Controller); err != nil {
			return fmt.Errorf("dist: restore controller: %w", err)
		}
	}
	s.global = restored
	s.round = st.Round
	s.nextClientID = st.NextClientID
	s.holdoutAcc = st.HoldoutAcc
	s.outstanding = 0
	s.clients = make(map[int]*clientInfo, len(st.Clients))
	s.byName = make(map[string]int, len(st.Clients))
	for i, c := range st.Clients {
		ci := &clientInfo{
			name: c.Name,
			tech: techs[i],
			dev: &device.Client{
				ID: c.ID,
				Compute: trace.ComputeProfile{
					GFLOPS:         clampFinite(c.GFLOPS, 0.1, 1e4, 10),
					MemoryMB:       clampFinite(c.MemoryMB, 16, 1e6, 2000),
					EnergyCapacity: 2,
				},
			},
			taskRound: -1,
		}
		s.clients[c.ID] = ci
		if c.Name != "" {
			s.byName[c.Name] = c.ID
		}
	}
	s.deltas = s.deltas[:0]
	s.weights = s.weights[:0]
	for i, d := range st.Deltas {
		if len(d) != s.global.NumParams() {
			return &checkpoint.CompatError{
				Field: "delta_len",
				Got:   fmt.Sprint(len(d)),
				Want:  fmt.Sprint(s.global.NumParams()),
			}
		}
		s.deltas = append(s.deltas, append([]float64(nil), d...))
		s.weights = append(s.weights, st.Weights[i])
	}
	if st.Obs != nil {
		if err := s.metrics.RestoreSnapshot(*st.Obs); err != nil {
			return fmt.Errorf("dist: restore metrics: %w", err)
		}
	}
	if len(st.Timeline) > 0 {
		if err := s.timeline.RestoreCheckpoint(st.Timeline); err != nil {
			return fmt.Errorf("dist: restore timeline: %w", err)
		}
	}
	if s.holdoutAcc != 0 {
		s.obs.holdoutAcc.Set(s.holdoutAcc)
	}
	s.armRoundTimerLocked()
	s.syncGaugesLocked()
	return nil
}

// SetDraining toggles drain mode: while draining, no new tasks are handed
// out (clients get 204 and back off) so outstanding work converges to
// zero ahead of a snapshot. Re-issues of already-held tasks still work —
// a drain must not strand a client that is mid-training.
func (s *Server) SetDraining(on bool) {
	s.mu.Lock()
	s.draining = on
	s.mu.Unlock()
}

// Draining reports whether drain mode is on.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleSnapshot serves GET /v1/snapshot: the framed aggregator snapshot,
// ready to be written to disk and handed to floatd -resume.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "dist: GET required", http.StatusMethodNotAllowed)
		return
	}
	blob, err := s.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

// handleDrain serves POST /v1/drain: {"off": true} re-opens task
// hand-out, anything else (including an empty body) starts draining. The
// response reports how much work is still in flight so operators can poll
// until it reaches zero and then snapshot.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "dist: POST required", http.StatusMethodNotAllowed)
		return
	}
	var req DrainRequest
	// The body is optional; a bare POST means "start draining".
	_ = json.NewDecoder(r.Body).Decode(&req)
	s.mu.Lock()
	s.draining = !req.Off
	resp := DrainResponse{
		Draining:        s.draining,
		Outstanding:     s.outstanding,
		BufferedUpdates: len(s.deltas),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}
