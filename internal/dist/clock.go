package dist

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts wall time for the server's lease and round timers and
// for the fault injector's latency injection, so tests drive expiry
// deterministically instead of sleeping. The zero ServerConfig uses the
// real clock.
type Clock interface {
	Now() time.Time
	// AfterFunc arranges for f to run once after d elapses. With the real
	// clock f runs on its own goroutine; with FakeClock it runs
	// synchronously inside Advance. Either way f is invoked with no clock
	// locks held, so it may call back into the clock.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer; it reports false when the callback already
	// fired or the timer was already stopped.
	Stop() bool
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// RealClock returns the wall-clock Clock used by default.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually-advanced Clock. Now() stands still until
// Advance moves it; timers fire synchronously inside Advance, in
// (deadline, creation) order, with the clock's lock released — callbacks
// may take other locks or schedule further timers. A timer scheduled with
// a non-positive delay fires on the next Advance call (even Advance(0)),
// never re-entrantly inside AfterFunc.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int64
	timers fakeTimerHeap
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock.
func (c *FakeClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &fakeTimer{clock: c, when: c.now.Add(d), seq: c.seq, f: f, index: -1}
	heap.Push(&c.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the window. Each callback runs to completion before the
// next due timer is considered, so a callback that re-arms a timer inside
// the same window is honored.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		if len(c.timers) == 0 || c.timers[0].when.After(target) {
			c.now = target
			c.mu.Unlock()
			return
		}
		t := heap.Pop(&c.timers).(*fakeTimer)
		if t.when.After(c.now) {
			c.now = t.when
		}
		f := t.f
		t.f = nil
		c.mu.Unlock()
		f()
		c.mu.Lock()
	}
}

type fakeTimer struct {
	clock *FakeClock
	when  time.Time
	seq   int64
	f     func()
	index int // heap position, -1 when fired or stopped
}

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.index < 0 {
		return false
	}
	heap.Remove(&t.clock.timers, t.index)
	t.f = nil
	return true
}

type fakeTimerHeap []*fakeTimer

func (h fakeTimerHeap) Len() int { return len(h) }
func (h fakeTimerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h fakeTimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *fakeTimerHeap) Push(x interface{}) {
	t := x.(*fakeTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *fakeTimerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
