package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"floatfl/internal/nn"
	"floatfl/internal/obs"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
)

// newRand is a tiny indirection so server and client share seeding style.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// defaultHTTPTimeout bounds a single request attempt so a dead server (or
// a dropped response) surfaces as a retryable error instead of hanging
// the client forever.
const defaultHTTPTimeout = 30 * time.Second

// RetryPolicy configures the client's handling of transient failures:
// transport errors, 5xx responses, and truncated response bodies. The
// protocol outcomes 204 (no slot) and 409 (stale round) and the remaining
// 4xx statuses are terminal and never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff interval (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s), with equal jitter drawn from
	// the client's seeded retry RNG: delay/2 + U(0, delay/2).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Client is the device-side runtime: it registers, polls for tasks, trains
// on its private shard under the assigned technique, and uploads the
// codec-compressed delta. Transient server and network failures are
// retried with seeded exponential backoff; protocol outcomes are not.
type Client struct {
	baseURL string
	// HTTPClient performs the requests; tests wrap its Transport with a
	// FaultInjector. The default has a defaultHTTPTimeout per attempt.
	HTTPClient *http.Client

	Name  string
	Shard []nn.Sample
	// LocalTest measures the accuracy-improvement reward.
	LocalTest []nn.Sample
	// Report supplies the per-round resource self-report; nil reports a
	// fully available device.
	Report func(round int) ResourceReport
	// Retry tunes transient-failure handling; the zero value gets
	// defaults at use time.
	Retry RetryPolicy
	// Sleep waits out a backoff delay; nil uses ctx-aware real sleeping.
	// Tests inject a fake-clock sleeper so retries cost no wall time.
	Sleep func(ctx context.Context, d time.Duration) error

	id   int
	spec TrainSpec
	// rng seeds model init and per-round training; retryRNG draws backoff
	// jitter. They are separate streams so injected faults never perturb
	// the training schedule.
	model    *nn.Model
	rng      *rand.Rand
	retryRNG *rand.Rand
	// lastDeadlineDiff carries human feedback into the next report.
	lastDeadlineDiff float64

	// Retry telemetry (nil until Instrument): retryable failures by
	// cause, plus requests that exhausted every attempt.
	obsRetryTransport *obs.Counter
	obsRetry5xx       *obs.Counter
	obsRetryDecode    *obs.Counter
	obsRetryExhausted *obs.Counter
}

// NewClient constructs a client runtime against a server base URL.
func NewClient(baseURL, name string, shard, localTest []nn.Sample, seed int64) *Client {
	return &Client{
		baseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: defaultHTTPTimeout},
		Name:       name,
		Shard:      shard,
		LocalTest:  localTest,
		rng:        newRand(seed),
		retryRNG:   newRand(seed ^ 0x5deece66d),
	}
}

// Register announces the client and receives its training configuration.
// Registration is idempotent per name on the server, so a retry after a
// dropped response reclaims the same identity.
func (c *Client) Register(ctx context.Context, gflops, memoryMB float64) error {
	var resp RegisterResponse
	if err := c.post(ctx, "/v1/register", RegisterRequest{
		Name: c.Name, GFLOPS: gflops, MemoryMB: memoryMB,
	}, &resp); err != nil {
		return err
	}
	c.id = resp.ClientID
	c.spec = resp.Spec
	m, err := nn.NewModel(resp.Spec.Arch, resp.Spec.InDim, resp.Spec.Classes, c.rng)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ID returns the server-assigned client ID (valid after Register).
func (c *Client) ID() int { return c.id }

// Step performs one full participation: fetch a task, train under the
// assigned technique, upload the update. It returns (participated, error);
// participated is false when the server had no slot for this round or the
// round advanced mid-training (a deployment-side dropout).
func (c *Client) Step(ctx context.Context, round int) (bool, error) {
	if c.model == nil {
		return false, fmt.Errorf("dist: client %q not registered", c.Name)
	}
	report := ResourceReport{CPUFrac: 0.8, MemFrac: 0.8, NetFrac: 1, BandwidthMbps: 50, Battery: 1}
	if c.Report != nil {
		report = c.Report(round)
	}
	report.DeadlineDiff = c.lastDeadlineDiff

	var task TaskResponse
	status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.id, Resources: report}, &task)
	if err != nil {
		return false, err
	}
	if status == http.StatusNoContent {
		return false, nil // no slot this round
	}
	if status == http.StatusConflict {
		return false, nil
	}
	tech, err := opt.Parse(task.Technique)
	if err != nil {
		return false, err
	}
	if err := c.model.UnmarshalBinary(task.Model); err != nil {
		return false, err
	}
	// Parameters() aliases the model, which training is about to mutate:
	// the pre-training snapshot must be a copy.
	before := c.model.Parameters().Clone()
	accBefore, _ := c.model.Evaluate(c.LocalTest)

	eff := tech.Effects()
	tc := nn.TrainConfig{
		Epochs:       c.spec.Epochs,
		BatchSize:    c.spec.BatchSize,
		LR:           c.spec.LR,
		GradClip:     5,
		FrozenLayers: opt.FrozenLayerMask(len(c.model.Layers), eff.PartialFrac),
		Seed:         c.rng.Int63(),
	}
	if _, err := c.model.Train(c.Shard, tc); err != nil {
		return false, err
	}
	delta := tensor.NewVector(c.model.NumParams())
	tensor.ScaledDiff(delta, 1, c.model.Parameters(), before)
	opt.ApplyToUpdate(tech, delta, c.rng)

	// Reuse the before-snapshot as the applied-parameters buffer.
	before.AddScaled(1, delta)
	if err := c.model.SetParameters(before); err != nil {
		return false, err
	}
	accAfter, _ := c.model.Evaluate(c.LocalTest)

	blob, err := opt.CompressUpdate(delta, c.spec.QuantBits)
	if err != nil {
		return false, err
	}
	status, err = c.postStatus(ctx, "/v1/update", UpdateRequest{
		ClientID:   c.id,
		Round:      task.Round,
		Technique:  tech.String(),
		Delta:      blob,
		Samples:    len(c.Shard),
		AccImprove: accAfter - accBefore,
	}, nil)
	if err != nil {
		return false, err
	}
	if status == http.StatusConflict {
		// The round moved on (or our lease expired) while we trained: a
		// real-world dropout.
		c.lastDeadlineDiff = 0.5
		return false, nil
	}
	c.lastDeadlineDiff = 0
	return status == http.StatusOK, nil
}

// Status fetches the server's status.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	status, err := c.do(ctx, http.MethodGet, "/v1/status", nil, &out)
	if err != nil {
		return out, err
	}
	if status != http.StatusOK {
		return out, fmt.Errorf("dist: status returned %d", status)
	}
	return out, nil
}

func (c *Client) post(ctx context.Context, path string, req, resp interface{}) error {
	status, err := c.postStatus(ctx, path, req, resp)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("dist: %s returned %d", path, status)
	}
	return nil
}

// postStatus posts JSON and decodes a JSON response when resp is non-nil
// and the status is 200. Protocol-level statuses (204, 409) are returned
// to the caller without error.
func (c *Client) postStatus(ctx context.Context, path string, req, resp interface{}) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	return c.do(ctx, http.MethodPost, path, body, resp)
}

// do issues one logical request with retries. Transport errors, 5xx
// statuses, and truncated 200 bodies are transient (the request is either
// idempotent or safely rejected with 409 on replay); everything else is
// terminal.
func (c *Client) do(ctx context.Context, method, path string, body []byte, resp interface{}) (int, error) {
	policy := c.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, policy, attempt); err != nil {
				return 0, err
			}
		}
		status, retryable, err := c.attempt(ctx, method, path, body, resp)
		if err == nil {
			return status, nil
		}
		if !retryable || ctx.Err() != nil {
			return status, err
		}
		lastErr = err
	}
	c.obsRetryExhausted.Inc()
	return 0, fmt.Errorf("dist: %s %s failed after %d attempts: %w",
		method, path, policy.MaxAttempts, lastErr)
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte, resp interface{}) (status int, retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := c.HTTPClient.Do(req)
	if err != nil {
		c.obsRetryTransport.Inc()
		return 0, true, err // transport failure: retryable
	}
	defer drainClose(httpResp.Body)
	switch {
	case httpResp.StatusCode == http.StatusOK:
		if resp != nil {
			if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
				// A truncated or garbled body on a 200 is a transport
				// failure in disguise.
				c.obsRetryDecode.Inc()
				return httpResp.StatusCode, true,
					fmt.Errorf("dist: %s response decode: %w", path, err)
			}
		}
		return httpResp.StatusCode, false, nil
	case httpResp.StatusCode == http.StatusNoContent, httpResp.StatusCode == http.StatusConflict:
		return httpResp.StatusCode, false, nil
	case httpResp.StatusCode >= 500:
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		c.obsRetry5xx.Inc()
		return httpResp.StatusCode, true, fmt.Errorf("dist: %s returned %d: %s",
			path, httpResp.StatusCode, bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return httpResp.StatusCode, false, fmt.Errorf("dist: %s returned %d: %s",
			path, httpResp.StatusCode, bytes.TrimSpace(msg))
	}
}

// backoff sleeps out the exponential-backoff delay before retry `attempt`
// (1-based), with equal jitter from the client's seeded retry RNG.
func (c *Client) backoff(ctx context.Context, policy RetryPolicy, attempt int) error {
	d := policy.BaseDelay << (attempt - 1)
	if d > policy.MaxDelay || d <= 0 {
		d = policy.MaxDelay
	}
	d = d/2 + time.Duration(c.retryRNG.Int63n(int64(d/2)+1))
	sleep := c.Sleep
	if sleep == nil {
		sleep = ctxSleep
	}
	return sleep(ctx, d)
}

func ctxSleep(ctx context.Context, d time.Duration) error {
	//lint:allow no-wall-clock default real sleep used only when no Client.Sleep is injected; tests always inject
	//lint:allow clock-taint reachable only through the Sleep==nil fallback; every deterministic harness injects Client.Sleep
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	_ = rc.Close()
}
