package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"floatfl/internal/nn"
	"floatfl/internal/opt"
	"floatfl/internal/tensor"
)

// newRand is a tiny indirection so server and client share seeding style.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Client is the device-side runtime: it registers, polls for tasks, trains
// on its private shard under the assigned technique, and uploads the
// codec-compressed delta.
type Client struct {
	baseURL string
	http    *http.Client

	Name  string
	Shard []nn.Sample
	// LocalTest measures the accuracy-improvement reward.
	LocalTest []nn.Sample
	// Report supplies the per-round resource self-report; nil reports a
	// fully available device.
	Report func(round int) ResourceReport

	id    int
	spec  TrainSpec
	model *nn.Model
	rng   *rand.Rand
	// lastDeadlineDiff carries human feedback into the next report.
	lastDeadlineDiff float64
}

// NewClient constructs a client runtime against a server base URL.
func NewClient(baseURL, name string, shard, localTest []nn.Sample, seed int64) *Client {
	return &Client{
		baseURL:   baseURL,
		http:      &http.Client{},
		Name:      name,
		Shard:     shard,
		LocalTest: localTest,
		rng:       newRand(seed),
	}
}

// Register announces the client and receives its training configuration.
func (c *Client) Register(gflops, memoryMB float64) error {
	var resp RegisterResponse
	if err := c.post("/v1/register", RegisterRequest{
		Name: c.Name, GFLOPS: gflops, MemoryMB: memoryMB,
	}, &resp); err != nil {
		return err
	}
	c.id = resp.ClientID
	c.spec = resp.Spec
	m, err := nn.NewModel(resp.Spec.Arch, resp.Spec.InDim, resp.Spec.Classes, c.rng)
	if err != nil {
		return err
	}
	c.model = m
	return nil
}

// ID returns the server-assigned client ID (valid after Register).
func (c *Client) ID() int { return c.id }

// Step performs one full participation: fetch a task, train under the
// assigned technique, upload the update. It returns (participated, error);
// participated is false when the server had no slot for this round or the
// round advanced mid-training (a deployment-side dropout).
func (c *Client) Step(round int) (bool, error) {
	if c.model == nil {
		return false, fmt.Errorf("dist: client %q not registered", c.Name)
	}
	report := ResourceReport{CPUFrac: 0.8, MemFrac: 0.8, NetFrac: 1, BandwidthMbps: 50, Battery: 1}
	if c.Report != nil {
		report = c.Report(round)
	}
	report.DeadlineDiff = c.lastDeadlineDiff

	var task TaskResponse
	status, err := c.postStatus("/v1/task", TaskRequest{ClientID: c.id, Resources: report}, &task)
	if err != nil {
		return false, err
	}
	if status == http.StatusNoContent {
		return false, nil // no slot this round
	}
	tech, err := opt.Parse(task.Technique)
	if err != nil {
		return false, err
	}
	if err := c.model.UnmarshalBinary(task.Model); err != nil {
		return false, err
	}
	// Parameters() aliases the model, which training is about to mutate:
	// the pre-training snapshot must be a copy.
	before := c.model.Parameters().Clone()
	accBefore, _ := c.model.Evaluate(c.LocalTest)

	eff := tech.Effects()
	tc := nn.TrainConfig{
		Epochs:       c.spec.Epochs,
		BatchSize:    c.spec.BatchSize,
		LR:           c.spec.LR,
		GradClip:     5,
		FrozenLayers: opt.FrozenLayerMask(len(c.model.Layers), eff.PartialFrac),
		Seed:         c.rng.Int63(),
	}
	if _, err := c.model.Train(c.Shard, tc); err != nil {
		return false, err
	}
	delta := tensor.NewVector(c.model.NumParams())
	tensor.ScaledDiff(delta, 1, c.model.Parameters(), before)
	opt.ApplyToUpdate(tech, delta, c.rng)

	// Reuse the before-snapshot as the applied-parameters buffer.
	before.AddScaled(1, delta)
	if err := c.model.SetParameters(before); err != nil {
		return false, err
	}
	accAfter, _ := c.model.Evaluate(c.LocalTest)

	blob, err := opt.CompressUpdate(delta, c.spec.QuantBits)
	if err != nil {
		return false, err
	}
	status, err = c.postStatus("/v1/update", UpdateRequest{
		ClientID:   c.id,
		Round:      task.Round,
		Technique:  tech.String(),
		Delta:      blob,
		Samples:    len(c.Shard),
		AccImprove: accAfter - accBefore,
	}, nil)
	if err != nil {
		return false, err
	}
	if status == http.StatusConflict {
		// The round moved on while we trained: a real-world dropout.
		c.lastDeadlineDiff = 0.5
		return false, nil
	}
	c.lastDeadlineDiff = 0
	return status == http.StatusOK, nil
}

// Status fetches the server's status.
func (c *Client) Status() (StatusResponse, error) {
	var out StatusResponse
	resp, err := c.http.Get(c.baseURL + "/v1/status")
	if err != nil {
		return out, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("dist: status returned %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func (c *Client) post(path string, req, resp interface{}) error {
	status, err := c.postStatus(path, req, resp)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("dist: %s returned %d", path, status)
	}
	return nil
}

// postStatus posts JSON and decodes a JSON response when resp is non-nil
// and the status is 200. Protocol-level statuses (204, 409) are returned
// to the caller without error.
func (c *Client) postStatus(path string, req, resp interface{}) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	httpResp, err := c.http.Post(c.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer drainClose(httpResp.Body)
	switch httpResp.StatusCode {
	case http.StatusOK:
		if resp != nil {
			if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
				return httpResp.StatusCode, err
			}
		}
		return httpResp.StatusCode, nil
	case http.StatusNoContent, http.StatusConflict:
		return httpResp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return httpResp.StatusCode, fmt.Errorf("dist: %s returned %d: %s",
			path, httpResp.StatusCode, bytes.TrimSpace(msg))
	}
}

func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, rc)
	_ = rc.Close()
}
