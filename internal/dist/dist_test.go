package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/fl"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/tensor"
)

func testServer(t *testing.T, ctrl fl.Controller, k int) (*Server, *httptest.Server, *data.Federation) {
	t.Helper()
	srv, hs, fed := testServerConfig(t, ServerConfig{AggregateK: k, Controller: ctrl})
	return srv, hs, fed
}

// testServerConfig builds a server from a partial config, filling in the
// spec and holdout from a fresh 8-client federation.
func testServerConfig(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server, *data.Federation) {
	t.Helper()
	fed, err := data.Generate("femnist", data.GenerateConfig{Clients: 8, Alpha: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spec = TrainSpec{
		Arch: "resnet18", InDim: fed.Profile.Dim, Classes: fed.Profile.Classes,
		Epochs: 2, BatchSize: 16, LR: 0.1,
	}
	cfg.Holdout = fed.GlobalTest[:200]
	cfg.Seed = 6
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs, fed
}

// clientNameSeq makes every test client's name unique: registration is
// idempotent per name, so tests that want distinct identities must not
// reuse one.
var clientNameSeq int64

func nextClientName() string {
	return fmt.Sprintf("c-%d", atomic.AddInt64(&clientNameSeq, 1))
}

func registeredClient(t *testing.T, hs *httptest.Server, fed *data.Federation, i int) *Client {
	t.Helper()
	c := NewClient(hs.URL, nextClientName(), fed.Train[i], fed.LocalTest[i], int64(100+i))
	if err := c.Register(context.Background(), 15, 3000); err != nil {
		t.Fatal(err)
	}
	return c
}

func fullReport() ResourceReport {
	return ResourceReport{CPUFrac: 0.8, MemFrac: 0.8, NetFrac: 1, BandwidthMbps: 50, Battery: 1}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("accepted empty TrainSpec")
	}
	if _, err := NewServer(ServerConfig{Spec: TrainSpec{Arch: "nope", InDim: 4, Classes: 2}}); err == nil {
		t.Fatal("accepted unknown arch")
	}
}

func TestRegisterAssignsIDs(t *testing.T) {
	_, hs, fed := testServer(t, nil, 2)
	a := registeredClient(t, hs, fed, 0)
	b := registeredClient(t, hs, fed, 1)
	if a.ID() == b.ID() {
		t.Fatal("clients with distinct names share an ID")
	}
	if a.spec.Arch != "resnet18" || a.spec.QuantBits != 16 {
		t.Fatalf("spec not propagated: %+v", a.spec)
	}
}

func TestRegisterIdempotentPerName(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 2)
	name := nextClientName()
	a := NewClient(hs.URL, name, fed.Train[0], fed.LocalTest[0], 1)
	if err := a.Register(context.Background(), 15, 3000); err != nil {
		t.Fatal(err)
	}
	// The same client retries registration (its first response was lost):
	// it must reclaim the same identity, not leak a duplicate clientInfo.
	b := NewClient(hs.URL, name, fed.Train[0], fed.LocalTest[0], 2)
	if err := b.Register(context.Background(), 15, 3000); err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatalf("re-register under name %q changed ID: %d -> %d", name, a.ID(), b.ID())
	}
	st, err := b.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Registered != 1 {
		t.Fatalf("re-register leaked a clientInfo: %d registered", st.Registered)
	}
	// Anonymous clients stay non-idempotent: no name to key on.
	anonA := NewClient(hs.URL, "", fed.Train[0], fed.LocalTest[0], 3)
	anonB := NewClient(hs.URL, "", fed.Train[0], fed.LocalTest[0], 4)
	if err := anonA.Register(context.Background(), 15, 3000); err != nil {
		t.Fatal(err)
	}
	if err := anonB.Register(context.Background(), 15, 3000); err != nil {
		t.Fatal(err)
	}
	if anonA.ID() == anonB.ID() {
		t.Fatal("anonymous clients share an ID")
	}
	_ = srv
}

func TestEndToEndTrainingImprovesAccuracy(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 4)
	ctx := context.Background()
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = registeredClient(t, hs, fed, i)
	}
	st, err := clients[0].Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registered != 4 || st.Round != 0 {
		t.Fatalf("status wrong: %+v", st)
	}

	const rounds = 8
	for round := 0; round < rounds; round++ {
		for _, c := range clients {
			ok, err := c.Step(ctx, round)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("client %d not accepted in round %d", c.ID(), round)
			}
		}
	}
	if srv.Round() != rounds {
		t.Fatalf("server at round %d, want %d", srv.Round(), rounds)
	}
	acc := srv.HoldoutAccuracy()
	chance := 1.0 / float64(fed.Profile.Classes)
	if acc < chance*1.5 {
		t.Fatalf("distributed training did not learn: holdout %.3f (chance %.3f)", acc, chance)
	}
}

func TestFloatControllerAssignsTechniques(t *testing.T) {
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: 7, TotalRounds: 10},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: 4,
	})
	srv, hs, fed := testServer(t, float, 3)
	ctx := context.Background()
	clients := make([]*Client, 3)
	for i := range clients {
		clients[i] = registeredClient(t, hs, fed, i)
		// Report squeezed resources so FLOAT's decisions matter.
		clients[i].Report = func(round int) ResourceReport {
			return ResourceReport{CPUFrac: 0.2, MemFrac: 0.4, NetFrac: 0.3, BandwidthMbps: 8, Battery: 0.6}
		}
	}
	for round := 0; round < 5; round++ {
		for _, c := range clients {
			if _, err := c.Step(ctx, round); err != nil {
				t.Fatal(err)
			}
		}
	}
	if float.Agent().Updates() == 0 {
		t.Fatal("FLOAT agent received no feedback through the HTTP path")
	}
	if srv.Round() != 5 {
		t.Fatalf("server at round %d, want 5", srv.Round())
	}
}

func TestStaleUpdateRejected(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 1)
	ctx := context.Background()
	slow := registeredClient(t, hs, fed, 0)
	fast := registeredClient(t, hs, fed, 1)

	// Slow client takes a task but does not upload yet.
	var task TaskResponse
	status, err := slow.postStatus(ctx, "/v1/task", TaskRequest{ClientID: slow.ID(),
		Resources: fullReport()}, &task)
	if err != nil || status != http.StatusOK {
		t.Fatalf("task fetch: %d %v", status, err)
	}
	// Fast client completes the round (AggregateK=1 advances immediately).
	if ok, err := fast.Step(ctx, 0); err != nil || !ok {
		t.Fatalf("fast client step: %v %v", ok, err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round should have advanced, at %d", srv.Round())
	}
	// Slow client now uploads for round 0 — must be rejected as stale, and
	// the client records deadline human feedback.
	if ok, err := slow.Step(ctx, 0); err != nil {
		t.Fatal(err)
	} else if ok {
		// Step re-fetched a fresh task for round 1, which is legal; but the
		// original task was invalidated by aggregateLocked. Either way the
		// slow client must not have corrupted round accounting.
		_ = ok
	}
	if srv.Round() < 1 {
		t.Fatal("round regressed")
	}
}

func TestUpdateValidation(t *testing.T) {
	_, hs, fed := testServer(t, nil, 2)
	ctx := context.Background()
	c := registeredClient(t, hs, fed, 0)

	post := func(v interface{}, path string) int {
		body, _ := json.Marshal(v)
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	// Unknown client.
	if code := post(UpdateRequest{ClientID: 99, Round: 0}, "/v1/update"); code != http.StatusNotFound {
		t.Fatalf("unknown client update returned %d", code)
	}
	if code := post(TaskRequest{ClientID: 99}, "/v1/task"); code != http.StatusNotFound {
		t.Fatalf("unknown client task returned %d", code)
	}
	// Garbage delta from a client that holds a task.
	status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatal(err)
	}
	if code := post(UpdateRequest{ClientID: c.ID(), Round: 0, Delta: []byte{1, 2}}, "/v1/update"); code != http.StatusBadRequest {
		t.Fatalf("garbage delta returned %d", code)
	}
	// GET on a POST-only endpoint.
	resp, err := http.Get(hs.URL + "/v1/task")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/task returned %d", resp.StatusCode)
	}
}

func TestOverProvisioningCap(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 4)
	ctx := context.Background()
	_ = srv
	// MaxOutstanding defaults to 8; the 9th concurrent task request must
	// get 204.
	var clients []*Client
	for i := 0; i < 8; i++ {
		c := registeredClient(t, hs, fed, i%8)
		status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
			Resources: fullReport()}, &TaskResponse{})
		if err != nil || status != http.StatusOK {
			t.Fatalf("client %d task: %d %v", i, status, err)
		}
		clients = append(clients, c)
	}
	extra := registeredClient(t, hs, fed, 0)
	status, err := extra.postStatus(ctx, "/v1/task", TaskRequest{ClientID: extra.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNoContent {
		t.Fatalf("over-provisioned task request returned %d, want 204", status)
	}
	// Idempotent re-request by a holder still succeeds.
	status, err = clients[0].postStatus(ctx, "/v1/task", TaskRequest{ClientID: clients[0].ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatalf("idempotent re-request: %d %v", status, err)
	}
}

func TestStepWithoutRegister(t *testing.T) {
	_, hs, fed := testServer(t, nil, 2)
	c := NewClient(hs.URL, "x", fed.Train[0], fed.LocalTest[0], 1)
	if _, err := c.Step(context.Background(), 0); err == nil {
		t.Fatal("Step before Register should fail")
	}
}

func TestNonFiniteUpdateRejected(t *testing.T) {
	srv, hs, fed := testServer(t, nil, 2)
	ctx := context.Background()
	c := registeredClient(t, hs, fed, 0)
	// Hold a valid task first.
	status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatal(err)
	}
	// Craft a correctly-sized delta whose scale field is Inf: the decoded
	// values become non-finite and the server must reject them.
	delta := tensor.NewVector(paramCount(t, c))
	delta.Fill(1)
	blob, err := opt.CompressUpdate(delta, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the scale with +Inf.
	binary.LittleEndian.PutUint64(blob[4:12], math.Float64bits(math.Inf(1)))
	status, err = c.postStatus(ctx, "/v1/update", UpdateRequest{
		ClientID: c.ID(), Round: 0, Technique: "quant16", Delta: blob, Samples: 10,
	}, nil)
	if err == nil && status == http.StatusOK {
		t.Fatal("server accepted a non-finite update")
	}
	if srv.Round() != 0 {
		t.Fatal("poisoned update advanced the round")
	}
}

// paramCount infers the global model's parameter count from the client's
// registered spec.
func paramCount(t *testing.T, c *Client) int {
	t.Helper()
	if c.model == nil {
		t.Fatal("client not registered")
	}
	return c.model.NumParams()
}

func TestSanitizeSelfReports(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)

	// clampFinite: the orDefault replacement must not wave NaN/Inf through.
	for _, tc := range []struct {
		in, want float64
	}{
		{nan, 10}, {inf, 10}, {math.Inf(-1), 10}, {-3, 10}, {0, 10},
		{1e300, 1e4}, {0.01, 0.1}, {15, 15},
	} {
		if got := clampFinite(tc.in, 0.1, 1e4, 10); got != tc.want {
			t.Errorf("clampFinite(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}

	// ResourceReport.sanitized clamps every field: absurd-but-finite
	// values clamp to the range; non-finite garbage is rejected to the low
	// bound (an Inf bandwidth claim earns no credit).
	r := ResourceReport{
		CPUFrac: nan, MemFrac: 7, NetFrac: -2,
		BandwidthMbps: inf, Battery: 1e10, DeadlineDiff: nan,
	}.sanitized()
	want := ResourceReport{CPUFrac: 0, MemFrac: 1, NetFrac: 0,
		BandwidthMbps: 0, Battery: 1, DeadlineDiff: 0}
	if r != want {
		t.Fatalf("sanitized report %+v, want %+v", r, want)
	}
	if got := clampReward(inf); got != 0 {
		t.Fatalf("clampReward(+Inf) = %v", got)
	}
	if got := clampReward(-9); got != -1 {
		t.Fatalf("clampReward(-9) = %v", got)
	}
}

// TestMalformedReportsDoNotPoisonController drives absurd self-reports
// through the real HTTP path and asserts the Controller only ever sees
// clamped values.
func TestMalformedReportsDoNotPoisonController(t *testing.T) {
	rec := &recordingController{}
	_, hs, fed := testServer(t, rec, 4)
	ctx := context.Background()

	c := registeredClient(t, hs, fed, 0)
	status, err := c.postStatus(ctx, "/v1/task", TaskRequest{ClientID: c.ID(),
		Resources: ResourceReport{CPUFrac: 1e9, MemFrac: -4, NetFrac: 0.5,
			BandwidthMbps: 1e300, Battery: 40, DeadlineDiff: -7},
	}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatalf("task: %d %v", status, err)
	}
	res := rec.lastDecide()
	if res.CPUFrac != 1 || res.MemFrac != 0 || res.BandwidthMbps != 1e5 || res.Battery != 1 {
		t.Fatalf("controller saw unsanitized resources: %+v", res)
	}

	// Absurd registration capability is clamped before it reaches the
	// controller's device shim.
	big := NewClient(hs.URL, nextClientName(), fed.Train[1], fed.LocalTest[1], 9)
	if err := big.Register(ctx, 1e300, -5); err != nil {
		t.Fatal(err)
	}
	status, err = big.postStatus(ctx, "/v1/task", TaskRequest{ClientID: big.ID(),
		Resources: fullReport()}, &TaskResponse{})
	if err != nil || status != http.StatusOK {
		t.Fatalf("task: %d %v", status, err)
	}
	dev := rec.lastDevice()
	if dev.Compute.GFLOPS != 1e4 || dev.Compute.MemoryMB != 2000 {
		t.Fatalf("controller saw unsanitized capability: %+v", dev.Compute)
	}
}
