module floatfl

go 1.22
