// Distributed deployment: FLOAT outside the simulator.
//
// This example runs the real HTTP aggregator (the same server behind
// cmd/floatd) on a localhost listener and drives it with eight concurrent
// client processes-in-goroutines, each holding a private non-IID shard and
// reporting fluctuating resources. FLOAT on the server assigns each client
// a technique per round from those self-reports alone — no raw data ever
// leaves a client, and the updates cross the wire quantized and
// run-length compressed.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/dist"
	"floatfl/internal/rl"
)

const (
	numClients = 8
	rounds     = 10
	seed       = 29
)

func main() {
	fed, err := data.Generate("femnist", data.GenerateConfig{
		Clients: numClients, Alpha: 0.1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	float := core.New(core.Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: numClients,
	})
	srv, err := dist.NewServer(dist.ServerConfig{
		Spec: dist.TrainSpec{
			Arch: "resnet18", InDim: fed.Profile.Dim, Classes: fed.Profile.Classes,
			Epochs: 2, BatchSize: 16, LR: 0.1,
		},
		AggregateK: numClients,
		Controller: float,
		Holdout:    fed.GlobalTest,
		// Fault tolerance: a client silent past its lease loses the slot
		// (and the dropout is reported to FLOAT); a round stuck under
		// AggregateK updates for RoundSeconds aggregates what arrived.
		LeaseSeconds: 60,
		RoundSeconds: 120,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//lint:allow naked-goroutine server goroutine lives for the process lifetime; the listener closes at exit
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			// Listener closes at process exit; nothing to do.
			_ = err
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("aggregator listening on %s\n", baseURL)

	// Clients run under a deadline context; Register/Step retry transient
	// network failures internally (seeded exponential backoff), so a flaky
	// localhost loopback would not kill the run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed + i)))
			c := dist.NewClient(baseURL, fmt.Sprintf("phone-%d", i),
				fed.Train[i], fed.LocalTest[i], int64(seed+100+i))
			// A mix of weak and strong devices.
			gflops := 6 + 10*float64(i%4)
			if err := c.Register(ctx, gflops, 2000+500*float64(i%4)); err != nil {
				log.Fatal(err)
			}
			c.Report = func(round int) dist.ResourceReport {
				// Fluctuating self-reported availability.
				return dist.ResourceReport{
					CPUFrac:       0.2 + 0.6*rng.Float64(),
					MemFrac:       0.3 + 0.5*rng.Float64(),
					NetFrac:       0.2 + 0.8*rng.Float64(),
					BandwidthMbps: 5 + 60*rng.Float64(),
					Battery:       0.4 + 0.6*rng.Float64(),
				}
			}
			for round := 0; round < rounds; round++ {
				if _, err := c.Step(ctx, round); err != nil {
					log.Fatal(err)
				}
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("\ncompleted %d aggregation rounds\n", srv.Round())
	fmt.Printf("holdout accuracy: %.1f%% (chance %.1f%%)\n",
		srv.HoldoutAccuracy()*100, 100.0/float64(fed.Profile.Classes))
	sum := float.Summary()
	fmt.Printf("FLOAT learned %d states from %d client reports (%.1f KB)\n",
		sum.States, sum.Updates, float64(sum.MemoryBytes)/1024)
	fmt.Println("\nper-action assignments over the run:")
	for _, st := range sum.Actions {
		if st.Visits > 0 {
			fmt.Printf("  %-10s %3d assignments, P(success)=%.2f\n", st.Technique, st.Visits, st.Part)
		}
	}
}
