// Heterogeneous vision: the paper's motivating workload (Section 4.4 /
// Fig 6). Highly non-IID FEMNIST-like data (Dirichlet alpha 0.01) under
// dynamic on-device interference, comparing three ways of managing
// acceleration on top of the same FedAvg deployment:
//
//   - no acceleration (clients sink or swim),
//   - the Section 4.4 heuristic (rules on CPU/network bins),
//   - FLOAT (the RLHF agent picks technique + configuration per client).
//
// The run prints the Fig 6 panels: accuracy & participation, resource
// inefficiency, and the per-technique success/failure breakdown.
//
//	go run ./examples/heterogeneous_vision
package main

import (
	"fmt"
	"log"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/opt"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

const (
	clients  = 50
	rounds   = 40
	perRound = 12
	seed     = 11
)

func run(name string, ctrl fl.Controller) *fl.Result {
	fed, err := data.Generate("femnist", data.GenerateConfig{
		Clients: clients, Alpha: 0.01, Seed: seed, // extreme non-IID
	})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: trace.ScenarioDynamic, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fl.RunSync(fed, pop, selection.NewRandom(seed), ctrl, fl.Config{
		Arch: "resnet34", Rounds: rounds, ClientsPerRound: perRound,
		Epochs: 2, BatchSize: 16, LR: 0.1,
		DeadlinePercentile: 45, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s top10 %5.1f%%  avg %5.1f%%  bottom10 %5.1f%%  dropped %3d  wasted-compute %6.1fh\n",
		name, res.FinalAccStats.Top10*100, res.FinalAccStats.Average*100,
		res.FinalAccStats.Bottom10*100, res.Ledger.TotalDrops,
		res.Ledger.Wasted.ComputeHours)
	return res
}

func main() {
	fmt.Println("FEMNIST-like, Dirichlet alpha=0.01, dynamic interference")
	fmt.Println()
	run("fedavg", fl.NoOpController{})
	heur := run("heuristic", core.NewHeuristic(seed))
	_ = heur
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: perRound,
	})
	res := run("float", float)

	fmt.Println("\nper-technique outcomes under FLOAT (Fig 6 right):")
	fmt.Printf("  %-10s %8s %8s\n", "technique", "success", "failure")
	for _, tech := range opt.Actions() {
		s, f := res.Ledger.TechSuccess[tech], res.Ledger.TechFailure[tech]
		if s+f == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d %8d\n", tech, s, f)
	}
}
