// Transfer: pre-train FLOAT's RLHF agent on one workload, then fine-tune
// it on another (the paper's RQ3 / Fig 9 reusability story).
//
// Phase 1 trains FLOAT(FedAvg) on FEMNIST-like data with ResNet-18 and
// saves the agent's Q-table. Phase 2 deploys that snapshot on CIFAR10-like
// data with ResNet-50 — a different dataset AND a different model — and
// compares its early rewards against a cold-started agent. The pre-trained
// agent should be earning positive rewards within a handful of rounds.
//
//	go run ./examples/transfer_rlhf
package main

import (
	"bytes"
	"fmt"
	"log"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

const (
	clients  = 40
	perRound = 10
	seed     = 17
)

func runFloat(dataset, arch string, rounds int, f *core.Float, seedOff int64) {
	fed, err := data.Generate(dataset, data.GenerateConfig{
		Clients: clients, Alpha: 0.1, Seed: seed + seedOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: trace.ScenarioDynamic, Seed: seed + seedOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fl.RunSync(fed, pop, selection.NewRandom(seed+seedOff), f, fl.Config{
		Arch: arch, Rounds: rounds, ClientsPerRound: perRound,
		Epochs: 2, BatchSize: 16, LR: 0.1,
		DeadlinePercentile: 45, Seed: seed + seedOff,
	}); err != nil {
		log.Fatal(err)
	}
}

func newFloat(rounds int, agentSeed int64) *core.Float {
	return core.New(core.Config{
		Agent:           rl.Config{Seed: agentSeed, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: perRound,
	})
}

func main() {
	// Phase 1: pre-train on FEMNIST + ResNet-18 (the paper's pre-training
	// configuration).
	const pretrainRounds = 50
	pre := newFloat(pretrainRounds, seed)
	runFloat("femnist", "resnet18", pretrainRounds, pre, 0)
	fmt.Printf("pre-trained on femnist/resnet18: %d states, mean reward (last quarter) %.3f\n",
		pre.Agent().StatesVisited(), pre.Agent().MeanRecentReward(pre.Agent().Updates()/4))

	var snapshot bytes.Buffer
	if err := pre.SaveAgent(&snapshot); err != nil {
		log.Fatal(err)
	}

	// Phase 2: CIFAR10 + ResNet-50, warm vs cold, short fine-tune budget.
	const fineTuneRounds = 20
	warm := newFloat(fineTuneRounds, seed+1)
	if err := warm.LoadAgent(bytes.NewReader(snapshot.Bytes())); err != nil {
		log.Fatal(err)
	}
	cold := newFloat(fineTuneRounds, seed+1)

	runFloat("cifar10", "resnet50", fineTuneRounds, warm, 100)
	runFloat("cifar10", "resnet50", fineTuneRounds, cold, 100)

	fmt.Println("\nfine-tuning on cifar10/resnet50 (different dataset AND model):")
	fmt.Printf("  %-12s mean reward over fine-tune: %.3f\n", "pre-trained",
		meanAll(warm.Agent()))
	fmt.Printf("  %-12s mean reward over fine-tune: %.3f\n", "cold-start",
		meanAll(cold.Agent()))
	fmt.Println("\nexpected shape: the pre-trained agent earns higher rewards from the")
	fmt.Println("first rounds because its Q-table already ranks techniques per state.")
}

func meanAll(a *rl.Agent) float64 {
	// The fine-tune runs are the only updates these agents saw after
	// construction/loading, so the full history is the fine-tune reward.
	return a.MeanRecentReward(0)
}
