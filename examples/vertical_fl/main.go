// Vertical FL: FLOAT in the non-horizontal setting (paper Section 7).
//
// Four parties hold disjoint feature slices of the same samples (think: a
// bank, a retailer, a telco, and an insurer describing the same
// customers). Every training step every party is on the critical path —
// one straggling party stalls the federation — so adaptive per-party
// acceleration matters even more than in horizontal FL. The run compares
// plain VFL against VFL with FLOAT deciding each party's technique.
//
//	go run ./examples/vertical_fl
package main

import (
	"fmt"
	"log"

	"floatfl/internal/core"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/trace"
	"floatfl/internal/vfl"
)

const (
	parties = 4
	rounds  = 30
	seed    = 23
)

func run(name string, ctrl fl.Controller) *vfl.Result {
	ds, err := vfl.Split("femnist", parties, 500, 200, seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := vfl.Config{
		EmbeddingDim: 8, Rounds: rounds, BatchSize: 16,
		LR: 0.3, StepsPerRound: 8, Seed: seed,
	}
	ps, coord, err := vfl.NewFederation(ds, cfg, trace.ScenarioDynamic)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vfl.Run(ds, ps, coord, ctrl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s final-acc %5.1f%%  party-drops %v (total %d)  wall-clock %5.2fh  wasted-compute %5.2fh\n",
		name, res.FinalTestAcc*100, res.PartyDrops, res.TotalDrops,
		res.WallClockSeconds/3600, res.WastedComputeHours)
	return res
}

func main() {
	fmt.Printf("vertical FL: %d parties, %d rounds, dynamic interference\n\n", parties, rounds)
	run("plain", fl.NoOpController{})
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          1,
		ClientsPerRound: parties,
	})
	run("float", float)
	fmt.Println("\nexpected shape: FLOAT keeps more parties inside the deadline, so")
	fmt.Println("fewer rounds train on zero-filled embeddings and accuracy holds up.")

	// Hybrid FL (Section 7): three silos, each a vertical federation over
	// the same feature schema but a different sample population; silos
	// train locally and FedAvg their split models every global round. One
	// FLOAT controller serves every party of every silo.
	fmt.Printf("\nhybrid FL: 3 silos x %d parties, %d global rounds\n\n", parties, rounds)
	cfg := vfl.Config{
		EmbeddingDim: 8, Rounds: rounds, BatchSize: 16,
		LR: 0.3, StepsPerRound: 8, Seed: seed,
	}
	hfloat := core.New(core.Config{
		Agent:           rl.Config{Seed: seed + 1, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          1,
		ClientsPerRound: 3 * parties,
	})
	for _, arm := range []struct {
		name string
		ctrl fl.Controller
	}{{"plain", fl.NoOpController{}}, {"float", hfloat}} {
		h, err := vfl.NewHybrid("femnist", 3, parties, 400, 150, cfg, trace.ScenarioDynamic, seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := h.Run(arm.ctrl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s final-acc %5.1f%%  silo-drops %v (total %d)  wall-clock %5.2fh\n",
			arm.name, res.FinalTestAcc*100, res.SiloDrops, res.TotalDrops,
			res.WallClockSeconds/3600)
	}
}
