// Asynchronous FL: FedBuff with and without FLOAT.
//
// FedBuff trains many clients concurrently against possibly-stale model
// versions and aggregates every K arrivals. It finishes in a fraction of
// synchronous FL's wall-clock time but consumes several times the
// resources (the Fig 2b trade-off). FLOAT cannot speed FedBuff up much —
// there is no hard deadline to miss — but it slashes the resource bill of
// dropouts from unavailability, memory, and energy (Fig 12's
// float(fedbuff) rows).
//
//	go run ./examples/async_fedbuff
package main

import (
	"fmt"
	"log"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

const (
	clients = 60
	aggs    = 12 // asynchronous aggregations == synchronous rounds
	seed    = 13
)

func setup() (*data.Federation, []*device.Client) {
	fed, err := data.Generate("cifar10", data.GenerateConfig{
		Clients: clients, Alpha: 0.1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: trace.ScenarioDynamic, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return fed, pop
}

func main() {
	cfg := fl.Config{
		Arch: "resnet34", Rounds: aggs, ClientsPerRound: 10,
		Epochs: 2, BatchSize: 16, LR: 0.1, Seed: seed,
		Concurrency: 30, BufferK: 10,
	}

	report := func(name string, res *fl.Result) {
		total := res.Ledger.Useful
		total.Add(res.Ledger.Wasted)
		fmt.Printf("%-16s wall-clock %6.2fh  client-rounds %4d  dropped %3d  total-compute %7.1fh  wasted-compute %6.1fh  avg-acc %5.1f%%\n",
			name, res.WallClockSeconds/3600, res.Ledger.TotalRounds,
			res.Ledger.TotalDrops, total.ComputeHours,
			res.Ledger.Wasted.ComputeHours, res.FinalAccStats.Average*100)
	}

	// Synchronous reference: same aggregation count.
	fed, pop := setup()
	sync, err := fl.RunSync(fed, pop, selection.NewRandom(seed), fl.NoOpController{}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("fedavg(sync)", sync)

	// FedBuff, plain.
	fed, pop = setup()
	async, err := fl.RunAsync(fed, pop, fl.NoOpController{}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("fedbuff", async)

	// FedBuff + FLOAT.
	fed, pop = setup()
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: aggs},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: cfg.Concurrency,
	})
	asyncFloat, err := fl.RunAsync(fed, pop, float, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("float(fedbuff)", asyncFloat)

	fmt.Println("\nexpected shape: fedbuff beats sync on wall-clock but burns more")
	fmt.Println("client-rounds/resources; FLOAT trims fedbuff's waste.")
}
