// Quickstart: the smallest complete FLOAT deployment.
//
// It builds a synthetic federated dataset and a heterogeneous device
// population, runs plain FedAvg, then runs the same workload with the
// FLOAT controller attached (nothing else changes — FLOAT is
// non-intrusive), and prints the comparison: dropouts, wasted resources,
// and final accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"floatfl/internal/core"
	"floatfl/internal/data"
	"floatfl/internal/device"
	"floatfl/internal/fl"
	"floatfl/internal/rl"
	"floatfl/internal/selection"
	"floatfl/internal/trace"
)

func main() {
	const (
		clients  = 40
		rounds   = 30
		perRound = 10
		seed     = 7
	)

	// 1. A non-IID federated dataset (Dirichlet alpha 0.1, the paper's
	//    end-to-end setting).
	fed, err := data.Generate("femnist", data.GenerateConfig{
		Clients: clients, Alpha: 0.1, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A heterogeneous device population under dynamic on-device
	//    interference — co-located apps eat resources while FL trains.
	pop, err := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: trace.ScenarioDynamic, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := fl.Config{
		Arch:               "resnet18",
		Rounds:             rounds,
		ClientsPerRound:    perRound,
		Epochs:             2,
		BatchSize:          16,
		LR:                 0.1,
		DeadlinePercentile: 50, // a deadline half the population cannot meet unaided
		Seed:               seed,
	}

	// 3. Baseline: FedAvg with no acceleration.
	baseline, err := fl.RunSync(fed, pop, selection.NewRandom(seed), fl.NoOpController{}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Same run with FLOAT deciding a per-client acceleration technique
	//    each round. Regenerate data/population so both runs start equal.
	fed2, _ := data.Generate("femnist", data.GenerateConfig{Clients: clients, Alpha: 0.1, Seed: seed})
	pop2, _ := device.NewPopulation(device.PopulationConfig{
		Clients: clients, Scenario: trace.ScenarioDynamic, Seed: seed,
	})
	float := core.New(core.Config{
		Agent:           rl.Config{Seed: seed, TotalRounds: rounds},
		BatchSize:       16,
		Epochs:          2,
		ClientsPerRound: perRound,
	})
	withFloat, err := fl.RunSync(fed2, pop2, selection.NewRandom(seed), float, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("                     FedAvg     FLOAT(FedAvg)")
	fmt.Printf("dropped clients      %-10d %d\n",
		baseline.Ledger.TotalDrops, withFloat.Ledger.TotalDrops)
	fmt.Printf("avg client accuracy  %-10.1f %.1f   (%%)\n",
		baseline.FinalAccStats.Average*100, withFloat.FinalAccStats.Average*100)
	fmt.Printf("wasted compute       %-10.2f %.2f   (hours)\n",
		baseline.Ledger.Wasted.ComputeHours, withFloat.Ledger.Wasted.ComputeHours)
	fmt.Printf("wasted communication %-10.2f %.2f   (hours)\n",
		baseline.Ledger.Wasted.CommHours, withFloat.Ledger.Wasted.CommHours)
	fmt.Printf("\nFLOAT agent learned %d states in %d updates (%.1f KB)\n",
		float.Agent().StatesVisited(), float.Agent().Updates(),
		float64(float.Agent().MemoryBytes())/1024)
}
